#include "rtl/netlist.h"

#include <sstream>

#include "rtl/cost.h"
#include "util/fmt.h"

namespace hsyn {
namespace {

std::string source_name(const SourceKey& s) {
  switch (s.kind) {
    case 0: return strf("r%d", s.idx);
    case 1: return strf("fu%d.out", s.idx);
    case 2: return strf("child%d.out%d", s.idx, s.port);
    default: return strf("in%d", s.idx);
  }
}

void emit(const Datapath& dp, const Library& lib, int depth,
          std::ostringstream& out) {
  const std::string ind(static_cast<std::size_t>(depth) * 2, ' ');
  out << ind << "module " << (dp.name.empty() ? "datapath" : dp.name) << " {\n";
  const std::string ind2 = ind + "  ";
  for (std::size_t i = 0; i < dp.fus.size(); ++i) {
    const FuType& t = lib.fu(dp.fus[i].type);
    out << ind2
        << strf("%s fu%zu;  // area %.0f, delay %.0f ns%s", t.name.c_str(), i,
                t.area, t.delay_ns,
                dp.fus[i].name.empty() ? "" : (" (" + dp.fus[i].name + ")").c_str())
        << "\n";
  }
  for (std::size_t r = 0; r < dp.regs.size(); ++r) {
    out << ind2
        << strf("%s r%zu;%s", lib.reg().name.c_str(), r,
                dp.regs[r].name.empty() ? "" : ("  // " + dp.regs[r].name).c_str())
        << "\n";
  }
  const Connectivity conn = connectivity_of(dp);
  auto emit_ports = [&](const std::string& uname,
                        const std::vector<std::set<int>>& ports) {
    for (std::size_t p = 0; p < ports.size(); ++p) {
      if (ports[p].empty()) continue;
      if (ports[p].size() == 1) {
        out << ind2
            << strf("wire r%d -> %s.p%zu;", *ports[p].begin(), uname.c_str(), p)
            << "\n";
      } else {
        out << ind2 << strf("mux%zu %s_p%zu_mux(", ports[p].size(), uname.c_str(), p);
        bool first = true;
        for (const int r : ports[p]) {
          if (!first) out << ", ";
          out << strf("r%d", r);
          first = false;
        }
        out << strf(") -> %s.p%zu;", uname.c_str(), p) << "\n";
      }
    }
  };
  for (std::size_t i = 0; i < dp.fus.size(); ++i) {
    emit_ports(strf("fu%zu", i), conn.fu_port_srcs[i]);
  }
  for (std::size_t i = 0; i < dp.children.size(); ++i) {
    emit_ports(strf("child%zu", i), conn.child_port_srcs[i]);
  }
  for (std::size_t r = 0; r < dp.regs.size(); ++r) {
    const auto& srcs = conn.reg_srcs[r];
    if (srcs.empty()) continue;
    if (srcs.size() == 1) {
      out << ind2 << strf("wire %s -> r%zu;", source_name(*srcs.begin()).c_str(), r)
          << "\n";
    } else {
      out << ind2 << strf("mux%zu r%zu_mux(", srcs.size(), r);
      bool first = true;
      for (const SourceKey& s : srcs) {
        if (!first) out << ", ";
        out << source_name(s);
        first = false;
      }
      out << strf(") -> r%zu;", r) << "\n";
    }
  }
  for (std::size_t cix = 0; cix < dp.children.size(); ++cix) {
    out << ind2
        << strf("// child%zu: %s%s", cix, dp.children[cix].name.c_str(),
                dp.children[cix].sealed ? " (sealed)" : "")
        << "\n";
    emit(*dp.children[cix].impl, lib, depth + 1, out);
  }
  out << ind << "}\n";
}

}  // namespace

std::string netlist_to_text(const Datapath& dp, const Library& lib) {
  std::ostringstream out;
  emit(dp, lib, 0, out);
  return out.str();
}

}  // namespace hsyn
