// Structural netlist export of a synthesized datapath.
//
// Emits a hierarchical, Verilog-flavoured structural description:
// component instances (functional units, registers, nested modules),
// multiplexers derived from the binding, and the nets connecting them.
// This is the "datapath netlist" half of H-SYN's output.
#pragma once

#include <string>

#include "rtl/datapath.h"

namespace hsyn {

/// Render the datapath (recursively) as a structural netlist.
std::string netlist_to_text(const Datapath& dp, const Library& lib);

}  // namespace hsyn
