// Expansion of a synthesized datapath into gate-level statistics: the
// "logic synthesis" step of the paper's flow (SIS + MSU cells),
// reproduced as direct technology mapping of each RTL component onto the
// gate builders. Produces per-module gate counts and areas that can be
// cross-checked against the RTL-level area model, plus totals for the
// floorplanner.
#pragma once

#include <string>
#include <vector>

#include "gates/gate_builders.h"
#include "rtl/datapath.h"

namespace hsyn::gates {

/// Gate-level accounting of one datapath level.
struct ModuleGates {
  std::string name;
  int fu_gates = 0;
  int reg_gates = 0;
  int mux_gates = 0;
  int ctrl_gates = 0;
  double area = 0;
  std::vector<ModuleGates> children;

  /// Total gate count including children.
  [[nodiscard]] int total_gates() const;

  /// Total gate area including children.
  [[nodiscard]] double total_area() const;
};

/// Expand every component of `dp` (functional units by their supported
/// op set, registers as DFF words, muxes from the binding-derived
/// connectivity, the controller as a state counter + decode estimate).
ModuleGates expand_datapath(const Datapath& dp, const Library& lib);

/// Human-readable expansion report.
std::string gates_report(const ModuleGates& m, int indent = 0);

}  // namespace hsyn::gates
