// Word-level gate-network builders: the MSU-standard-cell-style
// implementations of the library's functional units.
//
//   * ripple-carry adder / subtractor (two's complement),
//   * array multiplier (AND partial-product matrix + ripple reduction,
//     low 16 bits kept -- the datapath's wrap-around semantics),
//   * signed less-than comparator,
//   * logic ops, barrel shifter, 2:1 word mux trees,
//   * 16-bit register banks (D flip-flops).
#pragma once

#include "dfg/dfg.h"
#include "gates/gate_netlist.h"

namespace hsyn::gates {

inline constexpr int kWordBits = 16;

/// Fresh 16-bit primary-input word.
Word input_word(GateNetlist& net, const std::string& label);

/// sum = a + b (+cin), ripple carry; returns the 16-bit sum word.
Word ripple_adder(GateNetlist& net, const Word& a, const Word& b, int cin = -1);

/// a - b via complement-and-add.
Word subtractor(GateNetlist& net, const Word& a, const Word& b);

/// Low 16 bits of a * b (array multiplier).
Word array_multiplier(GateNetlist& net, const Word& a, const Word& b);

/// Word of all-equal bit: (signed a < signed b) ? 1 : 0.
Word less_than(GateNetlist& net, const Word& a, const Word& b);

/// Bitwise and/or/xor.
Word bitwise(GateNetlist& net, Op op, const Word& a, const Word& b);

/// Two's-complement negation.
Word negate(GateNetlist& net, const Word& a);

/// Barrel shifter: a shifted by the low 4 bits of `sh`. Arithmetic right
/// shift when `right`, logical left otherwise.
Word barrel_shift(GateNetlist& net, const Word& a, const Word& sh, bool right);

/// sel ? b : a, per bit.
Word mux_word(GateNetlist& net, int sel, const Word& a, const Word& b);

/// 16 D flip-flops capturing `d`; returns the stored word.
Word register_word(GateNetlist& net, const Word& d, const std::string& label);

/// Gate network computing `op` on two input words (the functional-unit
/// datapath of the matching library element).
struct FuNetwork {
  GateNetlist net;
  Word a, b, out;
};
FuNetwork build_fu(Op op);

/// Gate-level cost summary of one operation's hardware.
struct GateCost {
  int gates = 0;
  double area = 0;
  int depth = 0;
};
GateCost gate_cost(Op op);

}  // namespace hsyn::gates
