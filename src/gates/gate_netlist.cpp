#include "gates/gate_netlist.h"

#include <algorithm>

#include "util/fmt.h"

namespace hsyn::gates {

double gate_area(GateKind kind) {
  switch (kind) {
    case GateKind::Const0:
    case GateKind::Const1:
    case GateKind::Input: return 0;
    case GateKind::And:
    case GateKind::Or: return 1.0;
    case GateKind::Xor: return 1.5;
    case GateKind::Not: return 0.5;
    case GateKind::Mux2: return 1.75;
    case GateKind::Dff: return 4.0;
  }
  return 0;
}

double gate_cap(GateKind kind) {
  switch (kind) {
    case GateKind::Const0:
    case GateKind::Const1:
    case GateKind::Input: return 0;
    case GateKind::And:
    case GateKind::Or: return 1.0;
    case GateKind::Xor: return 1.6;
    case GateKind::Not: return 0.5;
    case GateKind::Mux2: return 1.8;
    case GateKind::Dff: return 3.0;
  }
  return 0;
}

GateNetlist::GateNetlist() {
  gates_.push_back({GateKind::Const0, -1, -1, -1, "0"});
  gates_.push_back({GateKind::Const1, -1, -1, -1, "1"});
  values_ = {0, 1};
  dff_state_ = {0, 0};
}

int GateNetlist::add_input(std::string label) {
  const int sig = static_cast<int>(gates_.size());
  gates_.push_back({GateKind::Input, -1, -1, -1, std::move(label)});
  values_.push_back(0);
  dff_state_.push_back(0);
  inputs_.push_back(sig);
  return sig;
}

int GateNetlist::add(GateKind kind, int a, int b, int s, std::string label) {
  check(kind != GateKind::Input && kind != GateKind::Const0 &&
            kind != GateKind::Const1,
        "use add_input / const0 / const1");
  const int self = static_cast<int>(gates_.size());
  check(a >= 0 && a < self, "gate input a out of range");
  check(kind == GateKind::Not || kind == GateKind::Dff ||
            (b >= 0 && b < self),
        "gate input b out of range");
  check(kind != GateKind::Mux2 || (s >= 0 && s < self),
        "mux select out of range");
  gates_.push_back({kind, a, b, s, std::move(label)});
  values_.push_back(0);
  dff_state_.push_back(0);
  return self;
}

int GateNetlist::add_dff_placeholder(std::string label) {
  const int self = static_cast<int>(gates_.size());
  gates_.push_back({GateKind::Dff, 0, -1, -1, std::move(label)});
  values_.push_back(0);
  dff_state_.push_back(0);
  return self;
}

void GateNetlist::set_dff_input(int dff_sig, int a) {
  check(dff_sig >= 0 && dff_sig < static_cast<int>(gates_.size()) &&
            gates_[static_cast<std::size_t>(dff_sig)].kind == GateKind::Dff,
        "set_dff_input: not a Dff");
  check(a >= 0 && a < static_cast<int>(gates_.size()),
        "set_dff_input: input out of range");
  gates_[static_cast<std::size_t>(dff_sig)].a = a;
}

void GateNetlist::mark_output(int sig, std::string label) {
  check(sig >= 0 && sig < static_cast<int>(gates_.size()), "bad output signal");
  outputs_.push_back({sig, std::move(label)});
}

std::map<GateKind, int> GateNetlist::histogram() const {
  std::map<GateKind, int> h;
  for (const Gate& g : gates_) {
    if (g.kind == GateKind::Input || g.kind == GateKind::Const0 ||
        g.kind == GateKind::Const1) {
      continue;
    }
    h[g.kind]++;
  }
  return h;
}

int GateNetlist::gate_count() const {
  int n = 0;
  for (const auto& [kind, c] : histogram()) {
    (void)kind;
    n += c;
  }
  return n;
}

double GateNetlist::area() const {
  double a = 0;
  for (const Gate& g : gates_) a += gate_area(g.kind);
  return a;
}

int GateNetlist::depth() const {
  std::vector<int> d(gates_.size(), 0);
  int worst = 0;
  for (std::size_t i = 2; i < gates_.size(); ++i) {
    const Gate& g = gates_[i];
    if (g.kind == GateKind::Input || g.kind == GateKind::Dff) {
      d[i] = 0;
      continue;
    }
    int in = 0;
    if (g.a >= 0) in = std::max(in, d[static_cast<std::size_t>(g.a)]);
    if (g.b >= 0) in = std::max(in, d[static_cast<std::size_t>(g.b)]);
    if (g.s >= 0) in = std::max(in, d[static_cast<std::size_t>(g.s)]);
    d[i] = in + 1;
    worst = std::max(worst, d[i]);
  }
  return worst;
}

void GateNetlist::set_input(int idx, bool value) {
  const int sig = inputs_.at(static_cast<std::size_t>(idx));
  values_[static_cast<std::size_t>(sig)] = value ? 1 : 0;
}

void GateNetlist::set_word(const std::vector<int>& sigs, std::int32_t value) {
  for (std::size_t bit = 0; bit < sigs.size(); ++bit) {
    const int sig = sigs[bit];
    check(gates_[static_cast<std::size_t>(sig)].kind == GateKind::Input,
          "set_word expects input signals");
    values_[static_cast<std::size_t>(sig)] =
        ((static_cast<std::uint32_t>(value) >> bit) & 1u) != 0 ? 1 : 0;
  }
}

bool GateNetlist::compute(const Gate& g) const {
  auto v = [&](int sig) {
    return values_[static_cast<std::size_t>(sig)] != 0;
  };
  switch (g.kind) {
    case GateKind::Const0: return false;
    case GateKind::Const1: return true;
    case GateKind::Input: return v(&g - gates_.data());
    case GateKind::And: return v(g.a) && v(g.b);
    case GateKind::Or: return v(g.a) || v(g.b);
    case GateKind::Xor: return v(g.a) != v(g.b);
    case GateKind::Not: return !v(g.a);
    case GateKind::Mux2: return v(g.s) ? v(g.b) : v(g.a);
    case GateKind::Dff: return false;  // handled in eval()
  }
  return false;
}

void GateNetlist::eval() {
  for (std::size_t i = 2; i < gates_.size(); ++i) {
    const Gate& g = gates_[i];
    bool nv;
    if (g.kind == GateKind::Input) {
      nv = values_[i] != 0;  // driven externally
    } else if (g.kind == GateKind::Dff) {
      nv = dff_state_[i] != 0;
    } else {
      nv = compute(g);
    }
    if (!first_eval_ && (values_[i] != 0) != nv) {
      ++toggles_;
      switched_cap_ += gate_cap(g.kind);
    }
    values_[i] = nv ? 1 : 0;
  }
  first_eval_ = false;
}

void GateNetlist::clock() {
  for (std::size_t i = 2; i < gates_.size(); ++i) {
    const Gate& g = gates_[i];
    if (g.kind != GateKind::Dff) continue;
    const bool nv = values_[static_cast<std::size_t>(g.a)] != 0;
    if ((dff_state_[i] != 0) != nv) {
      ++toggles_;
      switched_cap_ += gate_cap(GateKind::Dff);
    }
    dff_state_[i] = nv ? 1 : 0;
  }
  eval();
}

std::int32_t GateNetlist::read_word(const std::vector<int>& sigs) const {
  std::uint32_t v = 0;
  for (std::size_t bit = 0; bit < sigs.size(); ++bit) {
    if (values_[static_cast<std::size_t>(sigs[bit])] != 0) {
      v |= 1u << bit;
    }
  }
  if (sigs.size() >= 16 && (v & 0x8000u) != 0) {
    return static_cast<std::int32_t>(v | 0xFFFF0000u);
  }
  return static_cast<std::int32_t>(v);
}

void GateNetlist::reset_counters() {
  toggles_ = 0;
  switched_cap_ = 0;
}

}  // namespace hsyn::gates
