#include "gates/gate_expand.h"

#include <array>
#include <sstream>

#include "rtl/cost.h"
#include "util/fmt.h"
#include "util/log.h"

namespace hsyn::gates {
namespace {

/// Per-op gate costs, one eager table for the whole process instead of
/// the old per-thread lazy memo: there are only ~10 ops, so computing
/// them all once up front is cheaper than one thread's first pass, needs
/// no locking, and every worker thread shares the same table.
const GateCost& op_gate_cost(Op op) {
  static const auto table = [] {
    constexpr std::size_t n = static_cast<std::size_t>(Op::Hier);
    std::array<GateCost, n> t;
    for (std::size_t i = 0; i < n; ++i) t[i] = gate_cost(static_cast<Op>(i));
    return t;
  }();
  const std::size_t i = static_cast<std::size_t>(op);
  HSYN_CHECK(i < table.size(),
             "op_gate_cost: hierarchical op has no gate cost");
  return table[i];
}

/// Gate cost of a functional-unit type: the union of its operations'
/// networks (a multifunction ALU pays for each function plus a result
/// mux), chained types pay per element.
GateCost fu_gate_cost(const FuType& t) {
  GateCost total;
  for (const Op op : t.ops) {
    const GateCost& c = op_gate_cost(op);
    total.gates += c.gates;
    total.area += c.area;
    total.depth = std::max(total.depth, c.depth);
  }
  if (t.ops.size() > 1) {
    // Result selection mux per extra function.
    const int mux_gates = kWordBits * static_cast<int>(t.ops.size() - 1);
    total.gates += mux_gates;
    total.area += mux_gates * gate_area(GateKind::Mux2);
  }
  total.gates *= t.chain_depth;
  total.area *= t.chain_depth;
  return total;
}

}  // namespace

int ModuleGates::total_gates() const {
  int n = fu_gates + reg_gates + mux_gates + ctrl_gates;
  for (const ModuleGates& c : children) n += c.total_gates();
  return n;
}

double ModuleGates::total_area() const {
  double a = area;
  for (const ModuleGates& c : children) a += c.total_area();
  return a;
}

ModuleGates expand_datapath(const Datapath& dp, const Library& lib) {
  ModuleGates m;
  m.name = dp.name.empty() ? "datapath" : dp.name;

  for (const FuUnit& fu : dp.fus) {
    const GateCost c = fu_gate_cost(lib.fu(fu.type));
    m.fu_gates += c.gates;
    m.area += c.area;
  }
  m.reg_gates = static_cast<int>(dp.regs.size()) * kWordBits;
  m.area += m.reg_gates * gate_area(GateKind::Dff);

  // Muxes from binding-derived connectivity: a k-input word mux is
  // (k-1) x 16 Mux2 gates.
  const Connectivity conn = connectivity_of(dp);
  m.mux_gates = conn.mux_inputs() * kWordBits;
  m.area += m.mux_gates * gate_area(GateKind::Mux2);

  // Controller: state counter (log2 states DFFs + increment adder bits)
  // plus one decode AND per control signal per asserting state
  // (estimate: 2 gates per signal).
  const int states = controller_states(dp);
  int sbits = 1;
  while ((1 << sbits) < states + 1) ++sbits;
  m.ctrl_gates = sbits * 6 + conn.control_signals() * 2;
  m.area += sbits * (gate_area(GateKind::Dff) + 2.0) +
            conn.control_signals() * 2.0;

  for (const ChildUnit& c : dp.children) {
    m.children.push_back(expand_datapath(*c.impl, lib));
  }
  return m;
}

std::string gates_report(const ModuleGates& m, int indent) {
  std::ostringstream out;
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  out << pad
      << strf("%s: %d gates (fu %d, reg %d, mux %d, ctrl %d), gate-area %.0f",
              m.name.c_str(), m.total_gates(), m.fu_gates, m.reg_gates,
              m.mux_gates, m.ctrl_gates, m.total_area())
      << "\n";
  for (const ModuleGates& c : m.children) {
    out << gates_report(c, indent + 1);
  }
  return out.str();
}

}  // namespace hsyn::gates
