// Gate-level netlist substrate (the repo's substitute for the paper's
// SIS + MSU-standard-cell mapping; see DESIGN.md).
//
// RTL components expand into networks of 2-input gates, 2:1 muxes and D
// flip-flops. The netlist supports evaluation with per-gate toggle
// counting, which is the switch-level-style measurement used to validate
// the RTL power model's switched-capacitance ratios (e.g. that an array
// multiplier really toggles an order of magnitude more capacitance per
// evaluation than a ripple-carry adder).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace hsyn::gates {

enum class GateKind {
  Const0,
  Const1,
  Input,  ///< primary input signal
  And,
  Or,
  Xor,
  Not,
  Mux2,  ///< s ? b : a
  Dff,   ///< captures `a` on clock(); holds otherwise
};

/// Per-gate area weights in the same arbitrary units as the RTL model
/// (roughly: gate-equivalents).
double gate_area(GateKind kind);

/// Per-gate switched capacitance per output toggle.
double gate_cap(GateKind kind);

struct Gate {
  GateKind kind = GateKind::And;
  int a = -1;  ///< input signal (gate index)
  int b = -1;
  int s = -1;  ///< select input for Mux2
  std::string label;
};

/// A gate network. Signals are gate indices; gate 0 and 1 are the
/// constants. Combinational evaluation is in creation order, which the
/// builders guarantee to be topological.
class GateNetlist {
 public:
  GateNetlist();

  int const0() const { return 0; }
  int const1() const { return 1; }

  /// New primary input; returns its signal.
  int add_input(std::string label = {});

  /// New gate; returns its output signal. Inputs must already exist.
  int add(GateKind kind, int a, int b = -1, int s = -1, std::string label = {});

  /// New Dff whose data input is wired later (set_dff_input); used to
  /// break the register <- logic <- register cycles of full datapaths.
  int add_dff_placeholder(std::string label = {});

  /// Patch the data input of a Dff created by add_dff_placeholder.
  void set_dff_input(int dff_sig, int a);

  /// Mark a signal as a primary output.
  void mark_output(int sig, std::string label = {});

  const std::vector<Gate>& gates() const { return gates_; }
  const std::vector<int>& inputs() const { return inputs_; }
  const std::vector<std::pair<int, std::string>>& outputs() const {
    return outputs_;
  }

  /// Number of gates of each kind (constants and inputs excluded).
  std::map<GateKind, int> histogram() const;

  /// Total combinational + sequential gate count (excludes constants and
  /// inputs).
  int gate_count() const;

  /// Area under the per-kind weights.
  double area() const;

  /// Logic depth (max gates on an input-to-output path, Dffs cut paths).
  int depth() const;

  // ---- Evaluation with toggle accounting --------------------------------

  /// Set a primary input value (by position in inputs()).
  void set_input(int idx, bool value);

  /// Convenience: drive a 16-bit two's-complement word onto input
  /// signals `sigs` (low bit first).
  void set_word(const std::vector<int>& sigs, std::int32_t value);

  /// Propagate combinational logic; counts toggles on every gate output
  /// against the previous evaluation. Dffs keep their stored state.
  void eval();

  /// Clock edge: Dffs capture their inputs (counts their toggles), then
  /// combinational logic re-propagates.
  void clock();

  /// Current value of a signal.
  bool value(int sig) const { return values_[static_cast<std::size_t>(sig)]; }

  /// Read a word (low bit first) as a sign-extended 16-bit value.
  std::int32_t read_word(const std::vector<int>& sigs) const;

  /// Toggles accumulated since construction / reset_counters().
  std::uint64_t toggle_count() const { return toggles_; }

  /// Capacitance-weighted toggles.
  double switched_cap() const { return switched_cap_; }

  void reset_counters();

 private:
  bool compute(const Gate& g) const;

  std::vector<Gate> gates_;
  std::vector<int> inputs_;
  std::vector<std::pair<int, std::string>> outputs_;
  std::vector<char> values_;
  std::vector<char> dff_state_;
  std::uint64_t toggles_ = 0;
  double switched_cap_ = 0;
  bool first_eval_ = true;
};

/// A 16-bit word as gate signals, low bit first.
using Word = std::vector<int>;

}  // namespace hsyn::gates
