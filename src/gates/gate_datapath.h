// Full gate-level construction of a synthesized (flat) datapath:
// one-hot FSM state ring, D-flip-flop register words with write-mux
// networks, combinational functional-unit expressions (chains inlined)
// with operand-capture registers for multicycle units.
//
// This closes the verification chain at the lowest level the repo
// models: the same architecture can be executed by the behavioral
// evaluator, the cycle-accurate RTL simulator, and this gate network,
// and all three must agree bit-for-bit. It also measures switch-level-
// style toggle counts for whole datapaths (the IRSIM-fidelity end of the
// power-model cross-check).
//
// Hierarchical datapaths are not expanded here (children would need
// interface glue); flatten first or build per module.
#pragma once

#include "gates/gate_builders.h"
#include "power/trace.h"
#include "rtl/datapath.h"

namespace hsyn::gates {

struct GateDatapath {
  GateNetlist net;
  std::vector<Word> input_ports;   ///< primary-input input signals
  std::vector<Word> output_words;  ///< register words of primary outputs
  int start = -1;                  ///< start pulse input signal
  int cycles_per_sample = 0;       ///< clocks to run after the start pulse
};

/// Build behavior `b` of `dp` (children unsupported) as a gate network.
GateDatapath build_gate_datapath(const Datapath& dp, int b, const Library& lib,
                                 const OpPoint& pt);

/// Execute the network over `trace`: per sample, drive inputs, pulse
/// start, clock through the schedule, read outputs. Toggle counters on
/// `g.net` accumulate across the whole run.
std::vector<Sample> run_gate_datapath(GateDatapath& g, const Trace& trace);

}  // namespace hsyn::gates
