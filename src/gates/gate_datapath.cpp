#include "gates/gate_datapath.h"

#include <map>

#include "util/fmt.h"

namespace hsyn::gates {
namespace {

/// Combinational expression for one (possibly chained) invocation over
/// operand words keyed by external edge id.
Word invocation_expr(GateNetlist& net, const Datapath& dp, int b, int i,
                     const std::map<int, Word>& operand) {
  const BehaviorImpl& bi = dp.behaviors[static_cast<std::size_t>(b)];
  const Dfg& dfg = *bi.dfg;
  const Invocation& inv = bi.invs[static_cast<std::size_t>(i)];
  std::map<int, Word> local;
  Word result;
  for (const int nid : inv.nodes) {
    const Node& n = dfg.node(nid);
    auto word_for = [&](int port) -> const Word& {
      const int e = dfg.input_edge(nid, port);
      auto it = local.find(e);
      if (it != local.end()) return it->second;
      return operand.at(e);
    };
    switch (n.op) {
      case Op::Add: result = ripple_adder(net, word_for(0), word_for(1)); break;
      case Op::Sub: result = subtractor(net, word_for(0), word_for(1)); break;
      case Op::Mult:
        result = array_multiplier(net, word_for(0), word_for(1));
        break;
      case Op::Cmp: result = less_than(net, word_for(0), word_for(1)); break;
      case Op::And:
      case Op::Or:
      case Op::Xor: result = bitwise(net, n.op, word_for(0), word_for(1)); break;
      case Op::Neg: result = negate(net, word_for(0)); break;
      case Op::ShiftL:
        result = barrel_shift(net, word_for(0), word_for(1), false);
        break;
      case Op::ShiftR:
        result = barrel_shift(net, word_for(0), word_for(1), true);
        break;
      case Op::Hier: check(false, "gate datapath: hierarchical node"); break;
    }
    const int oe = dfg.output_edge(nid, 0);
    if (oe >= 0) local[oe] = result;
  }
  return result;
}

}  // namespace

GateDatapath build_gate_datapath(const Datapath& dp, int b, const Library& lib,
                                 const OpPoint& pt) {
  check(dp.children.empty(), "gate datapath supports flat datapaths only");
  const BehaviorImpl& bi = dp.behaviors.at(static_cast<std::size_t>(b));
  check(bi.scheduled, "gate datapath: behavior must be scheduled");
  const Dfg& dfg = *bi.dfg;

  GateDatapath g;
  GateNetlist& net = g.net;

  // ---- Primary input ports and start pulse. ------------------------------
  g.start = net.add_input("start");
  for (int i = 0; i < dfg.num_inputs(); ++i) {
    g.input_ports.push_back(input_word(net, strf("in%d", i)));
  }

  // ---- One-hot FSM state ring: state[k] high during cycle k. -------------
  const int nstates = bi.makespan + 1;
  std::vector<int> state(static_cast<std::size_t>(nstates));
  int prev = g.start;
  for (int k = 0; k < nstates; ++k) {
    state[static_cast<std::size_t>(k)] =
        net.add(GateKind::Dff, prev, -1, -1, strf("state%d", k));
    prev = state[static_cast<std::size_t>(k)];
  }

  // ---- Register words as Dff placeholders (inputs patched below). --------
  std::vector<Word> reg_q(dp.regs.size());
  for (std::size_t r = 0; r < dp.regs.size(); ++r) {
    Word q(static_cast<std::size_t>(kWordBits));
    for (int bit = 0; bit < kWordBits; ++bit) {
      q[static_cast<std::size_t>(bit)] =
          net.add_dff_placeholder(strf("r%zu[%d]", r, bit));
    }
    reg_q[r] = std::move(q);
  }
  auto word_of_edge = [&](int e) -> const Word& {
    const int r = bi.edge_reg.at(static_cast<std::size_t>(e));
    check(r >= 0, "gate datapath: unregistered external edge");
    return reg_q[static_cast<std::size_t>(r)];
  };

  // ---- Per-register write lists. -----------------------------------------
  struct Write {
    int cond;   ///< state signal (or start) gating the write
    Word value;
  };
  std::vector<std::vector<Write>> writes(dp.regs.size());

  // Primary inputs latch on start.
  for (int i = 0; i < dfg.num_inputs(); ++i) {
    const int e = dfg.primary_input_edge(i);
    if (e < 0) continue;
    const int r = bi.edge_reg[static_cast<std::size_t>(e)];
    if (r >= 0) {
      writes[static_cast<std::size_t>(r)].push_back(
          {g.start, g.input_ports[static_cast<std::size_t>(i)]});
    }
  }

  // Invocations: operand capture for multicycle, result write at ready.
  for (std::size_t i = 0; i < bi.invs.size(); ++i) {
    const Invocation& inv = bi.invs[i];
    const int start_cyc = bi.inv_start[i];
    const int lat =
        lib.cycles(dp.fus[static_cast<std::size_t>(inv.unit.idx)].type, pt);
    const std::vector<int> ins =
        dp.inv_input_edges(b, static_cast<int>(i));

    std::map<int, Word> operand;
    if (lat < 2) {
      for (const int e : ins) operand[e] = word_of_edge(e);
    } else {
      // Capture words: d = state[start] ? q_src : hold.
      for (const int e : ins) {
        const Word& src = word_of_edge(e);
        Word cap(static_cast<std::size_t>(kWordBits));
        for (int bit = 0; bit < kWordBits; ++bit) {
          cap[static_cast<std::size_t>(bit)] = net.add_dff_placeholder(
              strf("t_i%zu_e%d[%d]", i, e, bit));
        }
        for (int bit = 0; bit < kWordBits; ++bit) {
          const int d = net.add(
              GateKind::Mux2, cap[static_cast<std::size_t>(bit)],
              src[static_cast<std::size_t>(bit)],
              state[static_cast<std::size_t>(start_cyc)]);
          net.set_dff_input(cap[static_cast<std::size_t>(bit)], d);
        }
        operand[e] = std::move(cap);
      }
    }
    const Word result = invocation_expr(net, dp, b, static_cast<int>(i),
                                        operand);
    const int ready = start_cyc + lat;
    const int cond = state[static_cast<std::size_t>(
        lat < 2 ? start_cyc : ready - 1)];
    for (const int e : dp.inv_output_edges(b, static_cast<int>(i))) {
      const int r = bi.edge_reg[static_cast<std::size_t>(e)];
      if (r >= 0) writes[static_cast<std::size_t>(r)].push_back({cond, result});
    }
  }

  // ---- Patch register inputs: priority mux chain over the writes. --------
  for (std::size_t r = 0; r < dp.regs.size(); ++r) {
    for (int bit = 0; bit < kWordBits; ++bit) {
      int d = reg_q[r][static_cast<std::size_t>(bit)];  // hold
      for (const Write& w : writes[r]) {
        d = net.add(GateKind::Mux2, d, w.value[static_cast<std::size_t>(bit)],
                    w.cond);
      }
      net.set_dff_input(reg_q[r][static_cast<std::size_t>(bit)], d);
    }
  }

  // ---- Outputs. -----------------------------------------------------------
  for (int o = 0; o < dfg.num_outputs(); ++o) {
    const int e = dfg.primary_output_edge(o);
    const int r = bi.edge_reg[static_cast<std::size_t>(e)];
    check(r >= 0, "gate datapath: unregistered primary output");
    g.output_words.push_back(reg_q[static_cast<std::size_t>(r)]);
    for (int bit = 0; bit < kWordBits; ++bit) {
      net.mark_output(reg_q[static_cast<std::size_t>(r)]
                           [static_cast<std::size_t>(bit)],
                      strf("out%d[%d]", o, bit));
    }
  }
  g.cycles_per_sample = nstates + 1;
  return g;
}

std::vector<Sample> run_gate_datapath(GateDatapath& g, const Trace& trace) {
  std::vector<Sample> out;
  out.reserve(trace.size());
  for (const Sample& s : trace) {
    check(s.size() == g.input_ports.size(), "gate datapath: trace arity");
    for (std::size_t i = 0; i < s.size(); ++i) {
      g.net.set_word(g.input_ports[i], s[i]);
    }
    g.net.set_input(0, true);  // start is the first input created
    g.net.eval();
    g.net.clock();
    g.net.set_input(0, false);
    for (int c = 0; c < g.cycles_per_sample; ++c) {
      g.net.eval();
      g.net.clock();
    }
    Sample result;
    result.reserve(g.output_words.size());
    for (const Word& w : g.output_words) {
      result.push_back(g.net.read_word(w));
    }
    out.push_back(std::move(result));
  }
  return out;
}

}  // namespace hsyn::gates
