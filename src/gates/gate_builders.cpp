#include "gates/gate_builders.h"

#include "util/fmt.h"

namespace hsyn::gates {
namespace {

/// Full adder; returns {sum, carry}.
std::pair<int, int> full_adder(GateNetlist& net, int a, int b, int cin) {
  const int axb = net.add(GateKind::Xor, a, b);
  const int sum = net.add(GateKind::Xor, axb, cin);
  const int t1 = net.add(GateKind::And, a, b);
  const int t2 = net.add(GateKind::And, axb, cin);
  const int carry = net.add(GateKind::Or, t1, t2);
  return {sum, carry};
}

}  // namespace

Word input_word(GateNetlist& net, const std::string& label) {
  Word w;
  w.reserve(kWordBits);
  for (int i = 0; i < kWordBits; ++i) {
    w.push_back(net.add_input(strf("%s[%d]", label.c_str(), i)));
  }
  return w;
}

Word ripple_adder(GateNetlist& net, const Word& a, const Word& b, int cin) {
  check(a.size() == kWordBits && b.size() == kWordBits, "adder arity");
  Word sum(kWordBits);
  int carry = cin >= 0 ? cin : net.const0();
  for (int i = 0; i < kWordBits; ++i) {
    const auto [s, c] = full_adder(net, a[static_cast<std::size_t>(i)],
                                   b[static_cast<std::size_t>(i)], carry);
    sum[static_cast<std::size_t>(i)] = s;
    carry = c;
  }
  return sum;
}

Word subtractor(GateNetlist& net, const Word& a, const Word& b) {
  Word nb(kWordBits);
  for (int i = 0; i < kWordBits; ++i) {
    nb[static_cast<std::size_t>(i)] =
        net.add(GateKind::Not, b[static_cast<std::size_t>(i)]);
  }
  return ripple_adder(net, a, nb, net.const1());
}

Word array_multiplier(GateNetlist& net, const Word& a, const Word& b) {
  check(a.size() == kWordBits && b.size() == kWordBits, "multiplier arity");
  // Row accumulation of AND partial products; only the low word is kept
  // (two's-complement wrap-around makes unsigned low-word multiplication
  // correct for signed operands).
  Word acc(kWordBits, net.const0());
  for (int row = 0; row < kWordBits; ++row) {
    // Partial product row: a << row, masked by b[row], truncated to the
    // low word.
    Word pp(kWordBits, net.const0());
    for (int i = row; i < kWordBits; ++i) {
      pp[static_cast<std::size_t>(i)] =
          net.add(GateKind::And, a[static_cast<std::size_t>(i - row)],
                  b[static_cast<std::size_t>(row)]);
    }
    acc = ripple_adder(net, acc, pp);
  }
  return acc;
}

Word less_than(GateNetlist& net, const Word& a, const Word& b) {
  // a < b  <=>  sign(a - b) xor overflow(a - b). With d = a - b:
  // lt = (a15 ^ b15) ? a15 : d15.
  const Word d = subtractor(net, a, b);
  const int a15 = a[kWordBits - 1];
  const int b15 = b[kWordBits - 1];
  const int diff_sign = net.add(GateKind::Xor, a15, b15);
  const int lt = net.add(GateKind::Mux2, d[kWordBits - 1], a15, diff_sign);
  Word out(kWordBits, net.const0());
  out[0] = lt;
  return out;
}

Word bitwise(GateNetlist& net, Op op, const Word& a, const Word& b) {
  GateKind kind = GateKind::And;
  if (op == Op::Or) kind = GateKind::Or;
  if (op == Op::Xor) kind = GateKind::Xor;
  Word out(kWordBits);
  for (int i = 0; i < kWordBits; ++i) {
    out[static_cast<std::size_t>(i)] =
        net.add(kind, a[static_cast<std::size_t>(i)],
                b[static_cast<std::size_t>(i)]);
  }
  return out;
}

Word negate(GateNetlist& net, const Word& a) {
  Word na(kWordBits);
  for (int i = 0; i < kWordBits; ++i) {
    na[static_cast<std::size_t>(i)] =
        net.add(GateKind::Not, a[static_cast<std::size_t>(i)]);
  }
  Word zero(kWordBits, net.const0());
  return ripple_adder(net, na, zero, net.const1());
}

Word barrel_shift(GateNetlist& net, const Word& a, const Word& sh, bool right) {
  Word cur = a;
  for (int stage = 0; stage < 4; ++stage) {
    const int amount = 1 << stage;
    const int sel = sh[static_cast<std::size_t>(stage)];
    Word shifted(kWordBits);
    for (int i = 0; i < kWordBits; ++i) {
      int src;
      if (right) {
        const int from = i + amount;
        src = from < kWordBits ? cur[static_cast<std::size_t>(from)]
                               : cur[kWordBits - 1];  // arithmetic fill
      } else {
        const int from = i - amount;
        src = from >= 0 ? cur[static_cast<std::size_t>(from)] : net.const0();
      }
      shifted[static_cast<std::size_t>(i)] = src;
    }
    Word next(kWordBits);
    for (int i = 0; i < kWordBits; ++i) {
      next[static_cast<std::size_t>(i)] =
          net.add(GateKind::Mux2, cur[static_cast<std::size_t>(i)],
                  shifted[static_cast<std::size_t>(i)], sel);
    }
    cur = next;
  }
  return cur;
}

Word mux_word(GateNetlist& net, int sel, const Word& a, const Word& b) {
  Word out(kWordBits);
  for (int i = 0; i < kWordBits; ++i) {
    out[static_cast<std::size_t>(i)] =
        net.add(GateKind::Mux2, a[static_cast<std::size_t>(i)],
                b[static_cast<std::size_t>(i)], sel);
  }
  return out;
}

Word register_word(GateNetlist& net, const Word& d, const std::string& label) {
  Word q(kWordBits);
  for (int i = 0; i < kWordBits; ++i) {
    q[static_cast<std::size_t>(i)] =
        net.add(GateKind::Dff, d[static_cast<std::size_t>(i)], -1, -1,
                strf("%s[%d]", label.c_str(), i));
  }
  return q;
}

FuNetwork build_fu(Op op) {
  FuNetwork fu;
  fu.a = input_word(fu.net, "a");
  fu.b = input_word(fu.net, "b");
  switch (op) {
    case Op::Add: fu.out = ripple_adder(fu.net, fu.a, fu.b); break;
    case Op::Sub: fu.out = subtractor(fu.net, fu.a, fu.b); break;
    case Op::Mult: fu.out = array_multiplier(fu.net, fu.a, fu.b); break;
    case Op::Cmp: fu.out = less_than(fu.net, fu.a, fu.b); break;
    case Op::And:
    case Op::Or:
    case Op::Xor: fu.out = bitwise(fu.net, op, fu.a, fu.b); break;
    case Op::Neg: fu.out = negate(fu.net, fu.a); break;
    case Op::ShiftL: fu.out = barrel_shift(fu.net, fu.a, fu.b, false); break;
    case Op::ShiftR: fu.out = barrel_shift(fu.net, fu.a, fu.b, true); break;
    case Op::Hier: check(false, "build_fu on hierarchical op"); break;
  }
  for (int i = 0; i < kWordBits; ++i) {
    fu.net.mark_output(fu.out[static_cast<std::size_t>(i)],
                       strf("out[%d]", i));
  }
  return fu;
}

GateCost gate_cost(Op op) {
  const FuNetwork fu = build_fu(op);
  return {fu.net.gate_count(), fu.net.area(), fu.net.depth()};
}

}  // namespace hsyn::gates
