// Observability layer (src/obs/) and the shared JSON writer (util/json):
//   * JsonWriter escaping / validity, json_valid as a syntax oracle,
//   * span tracer: well-formed Chrome trace JSON, correct nesting,
//   * metrics registry: counters, gauges, histogram bucketing, snapshot,
//   * move ledger: merged output bit-identical at 1/2/8 threads,
//   * synthesis results bit-identical with tracing on vs off.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <thread>
#include <vector>

#include "benchmarks/benchmarks.h"
#include "obs/ledger.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rtl/fingerprint.h"
#include "runtime/thread_pool.h"
#include "synth/synthesizer.h"
#include "util/json.h"

namespace hsyn {
namespace {

// ---- util/json -----------------------------------------------------------

TEST(Json, EscapeCoversQuotesBackslashesAndControls) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string("a\x01") + "b"), "a\\u0001b");
  EXPECT_EQ(json_quote("x"), "\"x\"");
}

TEST(Json, WriterProducesValidDocuments) {
  JsonWriter w;
  w.begin_object();
  w.key("name").value("a \"quoted\"\nstring");
  w.key("n").value(std::uint64_t{42});
  w.key("neg").value(-7);
  w.key("pi").value(3.5);
  w.key("flag").value(true);
  w.key("nothing").null();
  w.key("rows").begin_array();
  w.value(1.5).value("two");
  w.begin_object();
  w.key("k").value(false);
  w.end_object();
  w.end_array();
  w.end_object();
  EXPECT_TRUE(json_valid(w.str())) << w.str();
  EXPECT_NE(w.str().find("\\\"quoted\\\""), std::string::npos);
}

TEST(Json, WriterRoundTripsDoubles) {
  JsonWriter w;
  w.begin_array();
  w.value(0.1).value(1.0 / 3.0).value(1e300).value(-0.0);
  w.end_array();
  EXPECT_TRUE(json_valid(w.str())) << w.str();
  // Non-finite doubles are not representable in JSON: rendered as null.
  JsonWriter nf;
  nf.begin_array();
  nf.value(std::numeric_limits<double>::infinity());
  nf.value(std::numeric_limits<double>::quiet_NaN());
  nf.end_array();
  EXPECT_EQ(nf.str(), "[null,null]");
}

TEST(Json, ValidatorRejectsBrokenSyntax) {
  EXPECT_TRUE(json_valid("{}"));
  EXPECT_TRUE(json_valid("[1, 2.5, \"a\", true, null]"));
  EXPECT_TRUE(json_valid("{\"a\": {\"b\": [1]}}"));
  EXPECT_FALSE(json_valid(""));
  EXPECT_FALSE(json_valid("{"));
  EXPECT_FALSE(json_valid("[1,]"));
  EXPECT_FALSE(json_valid("{\"a\" 1}"));
  EXPECT_FALSE(json_valid("{} trailing"));
  EXPECT_FALSE(json_valid("\"unterminated"));
}

// ---- span tracer ---------------------------------------------------------

TEST(Trace, DisabledRecordsNothing) {
  obs::Tracer& tr = obs::Tracer::instance();
  tr.set_enabled(false);
  tr.reset();
  { obs::Span s("never-recorded"); }
  EXPECT_TRUE(tr.events().empty());
}

TEST(Trace, CapturesNestedSpansWithDepths) {
  obs::Tracer& tr = obs::Tracer::instance();
  tr.reset();
  tr.set_enabled(true);
  {
    obs::Span outer("outer");
    {
      obs::Span inner("inner");
      { obs::Span leaf("leaf"); }
    }
    { obs::Span inner2("inner2"); }
  }
  tr.set_enabled(false);
  const std::vector<obs::SpanEvent> evs = tr.events();
  ASSERT_EQ(evs.size(), 4u);
  std::map<std::string, const obs::SpanEvent*> by_name;
  for (const obs::SpanEvent& e : evs) by_name[e.name] = &e;
  ASSERT_EQ(by_name.size(), 4u);
  EXPECT_EQ(by_name["outer"]->depth, 0u);
  EXPECT_EQ(by_name["inner"]->depth, 1u);
  EXPECT_EQ(by_name["leaf"]->depth, 2u);
  EXPECT_EQ(by_name["inner2"]->depth, 1u);
  // Containment: children begin/end inside their parents.
  EXPECT_GE(by_name["inner"]->begin_ns, by_name["outer"]->begin_ns);
  EXPECT_LE(by_name["inner"]->end_ns, by_name["outer"]->end_ns);
  EXPECT_GE(by_name["leaf"]->begin_ns, by_name["inner"]->begin_ns);
  EXPECT_LE(by_name["leaf"]->end_ns, by_name["inner"]->end_ns);
  for (const obs::SpanEvent& e : evs) EXPECT_LE(e.begin_ns, e.end_ns);
  tr.reset();
}

TEST(Trace, ChromeJsonIsWellFormed) {
  obs::Tracer& tr = obs::Tracer::instance();
  tr.reset();
  tr.set_enabled(true);
  {
    obs::Span a("alpha");
    obs::Span b("needs \"escaping\"");
  }
  tr.set_enabled(false);
  const std::string doc = tr.to_chrome_json();
  EXPECT_TRUE(json_valid(doc)) << doc;
  EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(doc.find("alpha"), std::string::npos);
  EXPECT_NE(doc.find("\\\"escaping\\\""), std::string::npos);
  tr.reset();
}

TEST(Trace, MultiThreadSpansCarryDistinctTids) {
  obs::Tracer& tr = obs::Tracer::instance();
  tr.reset();
  tr.set_enabled(true);
  auto work = [] { obs::Span s("worker-span"); };
  std::thread t1(work), t2(work);
  t1.join();
  t2.join();
  tr.set_enabled(false);
  const std::vector<obs::SpanEvent> evs = tr.events();
  ASSERT_EQ(evs.size(), 2u);
  EXPECT_NE(evs[0].tid, evs[1].tid);
  tr.reset();
}

// ---- metrics registry ----------------------------------------------------

TEST(Metrics, CountersAndGauges) {
  obs::Registry& reg = obs::Registry::instance();
  obs::Counter& c = reg.counter("test.obs.counter");
  c.reset();
  c.add();
  c.add(4);
  EXPECT_EQ(c.value(), 5u);
  // Lookup returns the same instrument.
  EXPECT_EQ(&reg.counter("test.obs.counter"), &c);
  obs::Gauge& g = reg.gauge("test.obs.gauge");
  g.set(2.5);
  EXPECT_EQ(g.value(), 2.5);
  c.reset();
  g.reset();
}

TEST(Metrics, HistogramPowerOfTwoBuckets) {
  obs::Registry& reg = obs::Registry::instance();
  obs::Histogram& h = reg.histogram("test.obs.hist");
  h.reset();
  h.observe(0);   // bucket 0
  h.observe(1);   // bucket 1: [1, 2)
  h.observe(2);   // bucket 2: [2, 4)
  h.observe(3);   // bucket 2
  h.observe(4);   // bucket 3: [4, 8)
  h.observe(100);  // bucket 7: [64, 128)
  EXPECT_EQ(h.count(), 6u);
  EXPECT_EQ(h.sum(), 110u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 2u);
  EXPECT_EQ(h.bucket(3), 1u);
  EXPECT_EQ(h.bucket(7), 1u);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
}

TEST(Metrics, SnapshotIsValidJsonAndCarriesSources) {
  obs::Registry& reg = obs::Registry::instance();
  reg.counter("test.obs.snap").add(3);
  reg.register_source("test-source", [] {
    return std::map<std::string, std::uint64_t>{{"polled", 7}};
  });
  const std::string doc = reg.to_json();
  EXPECT_TRUE(json_valid(doc)) << doc;
  EXPECT_NE(doc.find("\"test.obs.snap\":3"), std::string::npos);
  EXPECT_NE(doc.find("\"test-source\""), std::string::npos);
  EXPECT_NE(doc.find("\"polled\":7"), std::string::npos);
  reg.counter("test.obs.snap").reset();
}

// ---- move ledger + end-to-end guarantees ---------------------------------

/// One full synthesis of the `test1` benchmark (hier, power objective)
/// at `threads` workers; the ledger is reset first when `with_ledger`.
SynthResult run_synth(int threads, bool with_ledger) {
  runtime::set_threads(threads);
  const Library lib = default_library();
  const Benchmark bench = make_benchmark("test1", lib);
  if (with_ledger) {
    obs::MoveLedger::instance().reset();
    obs::MoveLedger::instance().set_enabled(true);
  }
  SynthOptions opts;
  opts.seed = 42;
  const double ts = 2.2 * min_sample_period_ns(bench.design, lib);
  SynthResult r = synthesize(bench.design, lib, &bench.clib, ts,
                             Objective::Power, Mode::Hierarchical, opts);
  obs::MoveLedger::instance().set_enabled(false);
  EXPECT_TRUE(r.ok) << r.fail_reason;
  return r;
}

TEST(Ledger, MergedOutputIdenticalAtAnyThreadCount) {
  std::string ref_jsonl;
  std::uint64_t ref_fp = 0;
  for (const int threads : {1, 2, 8}) {
    const SynthResult r = run_synth(threads, /*with_ledger=*/true);
    // Timing/cache fields are observational (arrival-order dependent);
    // everything else must be bit-identical.
    const std::string jsonl =
        obs::MoveLedger::instance().to_jsonl(/*include_timing=*/false);
    EXPECT_FALSE(jsonl.empty());
    if (ref_jsonl.empty()) {
      ref_jsonl = jsonl;
      ref_fp = structure_fingerprint(r.dp);
    } else {
      EXPECT_EQ(jsonl, ref_jsonl) << "ledger diverges at " << threads
                                  << " thread(s)";
      EXPECT_EQ(structure_fingerprint(r.dp), ref_fp);
    }
  }
  obs::MoveLedger::instance().reset();
  runtime::set_threads(0);
}

TEST(Ledger, RecordsAreWellFormedAndSummaryAddsUp) {
  run_synth(2, /*with_ledger=*/true);
  obs::MoveLedger& led = obs::MoveLedger::instance();
  const std::vector<obs::MoveRecord> recs = led.merged();
  ASSERT_FALSE(recs.empty());
  // Sorted by (group, cand), no duplicate keys.
  for (std::size_t i = 1; i < recs.size(); ++i) {
    const bool ordered =
        recs[i - 1].group < recs[i].group ||
        (recs[i - 1].group == recs[i].group && recs[i - 1].cand < recs[i].cand);
    ASSERT_TRUE(ordered) << "record " << i << " out of order";
  }
  // Every JSONL line is parseable JSON.
  const std::string jsonl = led.to_jsonl();
  std::size_t start = 0;
  std::size_t lines = 0;
  while (start < jsonl.size()) {
    std::size_t end = jsonl.find('\n', start);
    if (end == std::string::npos) end = jsonl.size();
    EXPECT_TRUE(json_valid(jsonl.substr(start, end - start)));
    ++lines;
    start = end + 1;
  }
  EXPECT_EQ(lines, recs.size());
  // The summary rollup counts exactly the merged records.
  std::uint64_t attempted = 0, accepted = 0, applied = 0;
  for (const auto& [kind, s] : led.summary()) {
    attempted += s.attempted;
    accepted += s.accepted;
    applied += s.applied;
    EXPECT_LE(s.accepted, s.applied);
    EXPECT_LE(s.applied + s.infeasible, s.attempted);
  }
  EXPECT_EQ(attempted, recs.size());
  EXPECT_LE(accepted, applied);
  // CSV export: header + one row per record.
  const std::string csv = led.to_csv();
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(csv.begin(), csv.end(), '\n')),
            recs.size() + 1);
  led.reset();
  runtime::set_threads(0);
}

TEST(Obs, SynthesisBitIdenticalWithTracingOnAndOff) {
  const SynthResult off = run_synth(2, /*with_ledger=*/false);
  obs::Tracer& tr = obs::Tracer::instance();
  tr.reset();
  tr.set_enabled(true);
  const SynthResult on = run_synth(2, /*with_ledger=*/true);
  tr.set_enabled(false);
  EXPECT_EQ(structure_fingerprint(on.dp), structure_fingerprint(off.dp));
  EXPECT_EQ(on.energy, off.energy);
  EXPECT_EQ(on.area, off.area);
  EXPECT_EQ(on.makespan, off.makespan);
  // The traced run captured the synthesis phase structure.
  const std::vector<obs::SpanEvent> evs = tr.events();
  ASSERT_FALSE(evs.empty());
  bool saw_synthesize = false, saw_improve = false, saw_eval = false;
  for (const obs::SpanEvent& e : evs) {
    saw_synthesize = saw_synthesize || std::string(e.name) == "synthesize";
    saw_improve = saw_improve || std::string(e.name) == "improve";
    saw_eval = saw_eval || std::string(e.name) == "eval-move";
  }
  EXPECT_TRUE(saw_synthesize);
  EXPECT_TRUE(saw_improve);
  EXPECT_TRUE(saw_eval);
  EXPECT_TRUE(json_valid(tr.to_chrome_json()));
  tr.reset();
  obs::MoveLedger::instance().reset();
  runtime::set_threads(0);
}

}  // namespace
}  // namespace hsyn
