// Reporting, summaries and operating-point sweeps.
#include <gtest/gtest.h>

#include "benchmarks/benchmarks.h"
#include "embed/embedder.h"
#include "power/rtlsim.h"
#include "rtl/controller.h"
#include "sched/scheduler.h"
#include "synth/initial.h"
#include "synth/report.h"
#include "synth/synthesizer.h"

namespace hsyn {
namespace {

TEST(Report, ResultSummaryContainsEveryMetric) {
  const Library lib = default_library();
  const Benchmark bench = make_benchmark("iir", lib);
  const double ts = 2.0 * min_sample_period_ns(bench.design, lib);
  SynthOptions opts;
  opts.max_passes = 2;
  const SynthResult r = synthesize(bench.design, lib, &bench.clib, ts,
                                   Objective::Power, Mode::Hierarchical, opts);
  ASSERT_TRUE(r.ok);
  const std::string s = result_summary(r, lib);
  for (const char* key :
       {"power-optimized", "operating point", "sampling period", "area",
        "energy/sample", "improvement", "synthesis time"}) {
    EXPECT_NE(s.find(key), std::string::npos) << key;
  }
}

TEST(Report, FailedResultSummary) {
  SynthResult r;
  r.fail_reason = "nothing fits";
  const std::string s = result_summary(r, default_library());
  EXPECT_NE(s.find("failed"), std::string::npos);
  EXPECT_NE(s.find("nothing fits"), std::string::npos);
}

TEST(Report, ArchitectureSummaryNests) {
  const Library lib = default_library();
  const Benchmark bench = make_benchmark("lat", lib);
  SynthContext cx;
  cx.design = &bench.design;
  cx.lib = &lib;
  cx.clib = &bench.clib;
  cx.pt = {5.0, 20.0};
  Datapath dp = initial_solution(bench.design.top(), "lat", cx);
  schedule_datapath(dp, lib, cx.pt, kNoDeadline);
  const std::string s = architecture_summary(dp, lib);
  EXPECT_NE(s.find("complex instance"), std::string::npos);
  EXPECT_NE(s.find("registers"), std::string::npos);
  // Nested module lines are indented.
  EXPECT_NE(s.find("  - "), std::string::npos);
}

TEST(Report, ControllerTextForMergedModule) {
  const Library lib = default_library();
  const OpPoint pt{5.0, 20.0};
  const Benchmark bench = make_benchmark("test1", lib);
  Datapath a = make_template_fast(bench.design.behavior("maddpair"), lib);
  Datapath b = make_template_fast(bench.design.behavior("seqmac"), lib);
  schedule_datapath(a, lib, pt, kNoDeadline);
  schedule_datapath(b, lib, pt, kNoDeadline);
  auto merged = embed_modules(a, b, lib, pt, nullptr);
  ASSERT_TRUE(merged.has_value());
  ASSERT_TRUE(schedule_datapath(*merged, lib, pt, kNoDeadline).ok);
  const Controller c = build_controller(*merged, lib, pt);
  const std::string text = controller_to_text(c);
  // Both behaviors appear as disjoint state ranges.
  EXPECT_NE(text.find("maddpair"), std::string::npos);
  EXPECT_NE(text.find("seqmac"), std::string::npos);
  EXPECT_EQ(static_cast<int>(c.states.size()),
            merged->behaviors[0].makespan + merged->behaviors[1].makespan + 2);
}

class OperatingPointSweep
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

/// Property: for any (vdd, clock) the initial solution schedules, the
/// RTL simulator verifies it, and makespan respects the Vdd slowdown.
TEST_P(OperatingPointSweep, InitialSolutionValidEverywhere) {
  const auto [vdd, clk] = GetParam();
  const OpPoint pt{vdd, clk};
  const Library lib = default_library();
  Design design;
  design.add_behavior(make_biquad("biquad"));
  design.set_top("biquad");
  SynthContext cx;
  cx.design = &design;
  cx.lib = &lib;
  cx.pt = pt;
  Datapath dp = initial_solution(design.top(), "biquad", cx);
  const SchedResult r = schedule_datapath(dp, lib, pt, kNoDeadline);
  ASSERT_TRUE(r.ok) << r.reason;
  EXPECT_GT(r.makespan, 0);

  const Trace trace = make_trace(8, 8, 3);
  const RtlSimResult sim = simulate_rtl(dp, 0, trace, lib, pt);
  EXPECT_TRUE(sim.ok) << (sim.violations.empty() ? "" : sim.violations[0]);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, OperatingPointSweep,
    ::testing::Combine(::testing::Values(5.0, 3.3, 2.4, 1.5),
                       ::testing::Values(10.0, 20.0, 38.0, 55.0)));

TEST(Report, MakespanGrowsMonotonicallyAsVddDrops) {
  const Library lib = default_library();
  Design design;
  design.add_behavior(make_biquad("biquad"));
  design.set_top("biquad");
  SynthContext cx;
  cx.design = &design;
  cx.lib = &lib;
  cx.pt = {5.0, 20.0};
  Datapath dp = initial_solution(design.top(), "biquad", cx);
  int prev = 0;
  for (const double vdd : {5.0, 3.3, 2.4, 1.5}) {
    invalidate_schedules(dp);
    const SchedResult r = schedule_datapath(dp, lib, {vdd, 20.0}, kNoDeadline);
    ASSERT_TRUE(r.ok);
    EXPECT_GE(r.makespan, prev) << vdd;
    prev = r.makespan;
  }
}

}  // namespace
}  // namespace hsyn
