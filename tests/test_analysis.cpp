#include <gtest/gtest.h>

#include "dfg/analysis.h"

namespace hsyn {
namespace {

/// Diamond: out = (a+b) * ((a+b)+c), latencies add=1, mult=3.
Dfg diamond() {
  Dfg d("diamond", 3, 1);
  const int a1 = d.add_node(Op::Add);
  const int a2 = d.add_node(Op::Add);
  const int m = d.add_node(Op::Mult);
  d.connect({kPrimaryIn, 0}, {{a1, 0}});
  d.connect({kPrimaryIn, 1}, {{a1, 1}});
  d.connect({kPrimaryIn, 2}, {{a2, 1}});
  d.connect({a1, 0}, {{a2, 0}, {m, 0}});
  d.connect({a2, 0}, {{m, 1}});
  d.connect({m, 0}, {{kPrimaryOut, 0}});
  d.validate();
  return d;
}

LatencyFn unit_latency() {
  return [](const Node& n) { return n.op == Op::Mult ? 3 : 1; };
}

TEST(Analysis, AsapTimesAndMakespan) {
  const Dfg d = diamond();
  const AsapResult r = asap(d, unit_latency());
  EXPECT_EQ(r.start[0], 0);
  EXPECT_EQ(r.finish[0], 1);
  EXPECT_EQ(r.start[1], 1);
  EXPECT_EQ(r.finish[1], 2);
  EXPECT_EQ(r.start[2], 2);
  EXPECT_EQ(r.makespan, 5);
}

TEST(Analysis, AlapAgainstDeadline) {
  const Dfg d = diamond();
  const AlapResult r = alap(d, unit_latency(), 8);
  EXPECT_EQ(r.start[2], 5);   // mult as late as possible
  EXPECT_EQ(r.finish[2], 8);
  EXPECT_EQ(r.start[1], 4);   // a2 right before mult
  EXPECT_EQ(r.start[0], 3);   // a1 bounded by a2 (its tightest consumer)
}

TEST(Analysis, CriticalPathEqualsAsapMakespan) {
  const Dfg d = diamond();
  EXPECT_EQ(critical_path(d, unit_latency()), 5);
}

TEST(Analysis, MobilityZeroOnCriticalPath) {
  const Dfg d = diamond();
  const auto m = mobility(d, unit_latency(), 5);
  EXPECT_EQ(m[0], 0);
  EXPECT_EQ(m[1], 0);
  EXPECT_EQ(m[2], 0);
  const auto m2 = mobility(d, unit_latency(), 7);
  for (const int v : m2) EXPECT_EQ(v, 2);
}

TEST(Analysis, MobilityOfOffCriticalNode) {
  // Two independent chains to one add: long chain (3 adds) vs 1 add.
  Dfg d("chains", 2, 1);
  const int c1 = d.add_node(Op::Add);
  const int c2 = d.add_node(Op::Add);
  const int c3 = d.add_node(Op::Add);
  const int s = d.add_node(Op::Add);
  const int fin = d.add_node(Op::Add);
  d.connect({kPrimaryIn, 0}, {{c1, 0}, {c1, 1}, {s, 0}});
  d.connect({kPrimaryIn, 1}, {{c2, 1}, {c3, 1}, {s, 1}});
  d.connect({c1, 0}, {{c2, 0}});
  d.connect({c2, 0}, {{c3, 0}});
  d.connect({c3, 0}, {{fin, 0}});
  d.connect({s, 0}, {{fin, 1}});
  d.connect({fin, 0}, {{kPrimaryOut, 0}});
  d.validate();
  const auto lat = [](const Node&) { return 1; };
  const auto m = mobility(d, lat, 4);
  EXPECT_EQ(m[static_cast<std::size_t>(c1)], 0);
  EXPECT_EQ(m[static_cast<std::size_t>(s)], 2);  // can slide cycles 0..2
}

TEST(Analysis, HierLatencyRespected) {
  Dfg d("h", 1, 1);
  const int h = d.add_hier_node("filter", 1, 1);
  d.connect({kPrimaryIn, 0}, {{h, 0}});
  d.connect({h, 0}, {{kPrimaryOut, 0}});
  d.validate();
  const LatencyFn lat = [](const Node& n) { return n.is_hier() ? 9 : 1; };
  EXPECT_EQ(critical_path(d, lat), 9);
}

}  // namespace
}  // namespace hsyn
