#include <gtest/gtest.h>

#include "benchmarks/benchmarks.h"
#include "rtl/controller.h"
#include "rtl/netlist.h"
#include "sched/scheduler.h"
#include "synth/initial.h"

namespace hsyn {
namespace {

const OpPoint kRef{5.0, 20.0};

struct Fixture {
  Library lib = default_library();
  Design design;
  Datapath dp;

  Fixture() {
    design.add_behavior(make_biquad("biquad"));
    design.set_top("biquad");
    design.validate();
    SynthContext cx;
    cx.design = &design;
    cx.lib = &lib;
    cx.pt = kRef;
    dp = initial_solution(design.top(), "biquad", cx);
    schedule_datapath(dp, lib, kRef, kNoDeadline);
  }
};

TEST(Controller, OneStatePerCycle) {
  Fixture f;
  const Controller c = build_controller(f.dp, f.lib, kRef);
  EXPECT_EQ(static_cast<int>(c.states.size()), f.dp.behaviors[0].makespan + 1);
  EXPECT_GT(c.num_signals, 0);
}

TEST(Controller, EveryInvocationStartsSomewhere) {
  Fixture f;
  const Controller c = build_controller(f.dp, f.lib, kRef);
  int starts = 0;
  for (const FsmState& st : c.states) {
    for (const ControlAssert& a : st.asserts) {
      if (a.kind == ControlAssert::Kind::UnitStart) ++starts;
    }
  }
  EXPECT_EQ(starts, static_cast<int>(f.dp.behaviors[0].invs.size()));
}

TEST(Controller, RegisterLoadsMatchWrites) {
  Fixture f;
  const Controller c = build_controller(f.dp, f.lib, kRef);
  int loads = 0;
  for (const FsmState& st : c.states) {
    for (const ControlAssert& a : st.asserts) {
      if (a.kind == ControlAssert::Kind::RegLoad) ++loads;
    }
  }
  // One load per registered, internally produced edge.
  int internal_edges = 0;
  for (const Edge& e : f.dp.behaviors[0].dfg->edges()) {
    if (e.src.node >= 0 &&
        f.dp.behaviors[0].edge_reg[static_cast<std::size_t>(e.id)] >= 0) {
      ++internal_edges;
    }
  }
  EXPECT_EQ(loads, internal_edges);
}

TEST(Controller, MergedModuleStatesAddUp) {
  const Library lib = default_library();
  const Benchmark bench = make_benchmark("test1", lib);
  Datapath a = make_template_fast(bench.design.behavior("maddpair"), lib);
  Datapath b = make_template_fast(bench.design.behavior("seqmac"), lib);
  schedule_datapath(a, lib, kRef, kNoDeadline);
  schedule_datapath(b, lib, kRef, kNoDeadline);
  Datapath merged = a;
  // Use the embedder path through move C elsewhere; here simply check the
  // controller handles multi-behavior datapaths via manual concatenation.
  const Controller ca = build_controller(a, lib, kRef);
  const Controller cb = build_controller(b, lib, kRef);
  EXPECT_EQ(ca.states.size(), static_cast<std::size_t>(a.behaviors[0].makespan + 1));
  EXPECT_EQ(cb.states.size(), static_cast<std::size_t>(b.behaviors[0].makespan + 1));
}

TEST(Controller, TextRendering) {
  Fixture f;
  const Controller c = build_controller(f.dp, f.lib, kRef);
  const std::string text = controller_to_text(c);
  EXPECT_NE(text.find("fsm:"), std::string::npos);
  EXPECT_NE(text.find("state"), std::string::npos);
  EXPECT_NE(text.find("start("), std::string::npos);
}

TEST(Netlist, ContainsAllInstances) {
  Fixture f;
  const std::string nl = netlist_to_text(f.dp, f.lib);
  EXPECT_NE(nl.find("module biquad_dp"), std::string::npos);
  // 5 multipliers and several adders exist as fu instances.
  EXPECT_NE(nl.find("mult1 fu"), std::string::npos);
  EXPECT_NE(nl.find("reg1 r0"), std::string::npos);
  EXPECT_NE(nl.find("wire"), std::string::npos);
}

TEST(Netlist, EmitsMuxesForSharedPorts) {
  Fixture f;
  BehaviorImpl& bi = f.dp.behaviors[0];
  int first = -1;
  for (Invocation& inv : bi.invs) {
    if (bi.dfg->node(inv.nodes[0]).op != Op::Mult) continue;
    if (first < 0) {
      first = inv.unit.idx;
    } else {
      inv.unit.idx = first;
    }
  }
  f.dp.prune_unused();
  ASSERT_TRUE(schedule_datapath(f.dp, f.lib, kRef, kNoDeadline).ok);
  const std::string nl = netlist_to_text(f.dp, f.lib);
  EXPECT_NE(nl.find("mux"), std::string::npos);
}

TEST(Netlist, RecursesIntoChildren) {
  const Library lib = default_library();
  const Benchmark bench = make_benchmark("lat", lib);
  SynthContext cx;
  cx.design = &bench.design;
  cx.lib = &lib;
  cx.clib = &bench.clib;
  cx.pt = kRef;
  Datapath dp = initial_solution(bench.design.top(), "lat", cx);
  schedule_datapath(dp, lib, kRef, kNoDeadline);
  const std::string nl = netlist_to_text(dp, lib);
  EXPECT_NE(nl.find("child0"), std::string::npos);
  EXPECT_NE(nl.find("  module"), std::string::npos);  // nested module
}

}  // namespace
}  // namespace hsyn
