#include <gtest/gtest.h>

#include "benchmarks/benchmarks.h"
#include "power/rtlsim.h"
#include "synth/report.h"
#include "synth/synthesizer.h"

namespace hsyn {
namespace {

SynthOptions quick_opts() {
  SynthOptions o;
  o.max_passes = 3;
  o.max_moves_per_pass = 8;
  o.max_candidates = 12;
  o.trace_samples = 16;
  o.max_clocks = 3;
  return o;
}

TEST(Synthesizer, MinSamplePeriodPositive) {
  const Library lib = default_library();
  const Benchmark bench = make_benchmark("iir", lib);
  const double ts = min_sample_period_ns(bench.design, lib);
  EXPECT_GT(ts, 0);
  // Three cascaded biquads, each mult(55) + two adds in series at least.
  EXPECT_GT(ts, 150);
}

TEST(Synthesizer, InfeasibleConstraintFailsGracefully) {
  const Library lib = default_library();
  const Benchmark bench = make_benchmark("iir", lib);
  const SynthResult r = synthesize(bench.design, lib, &bench.clib, 1.0,
                                   Objective::Area, Mode::Hierarchical,
                                   quick_opts());
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.fail_reason.empty());
}

TEST(Synthesizer, HierAndFlatBothSucceed) {
  const Library lib = default_library();
  const Benchmark bench = make_benchmark("hier_paulin", lib);
  const double ts = 1.5 * min_sample_period_ns(bench.design, lib);
  for (const Mode mode : {Mode::Hierarchical, Mode::Flattened}) {
    const SynthResult r = synthesize(bench.design, lib, &bench.clib, ts,
                                     Objective::Area, mode, quick_opts());
    ASSERT_TRUE(r.ok) << mode_name(mode) << ": " << r.fail_reason;
    EXPECT_GT(r.area, 0);
    EXPECT_GT(r.power, 0);
    EXPECT_LE(r.makespan, r.deadline_cycles);
  }
}

TEST(Synthesizer, PowerOptimizedConsumesLessThanAreaOptimized) {
  const Library lib = default_library();
  const Benchmark bench = make_benchmark("test1", lib);
  const double ts = 2.2 * min_sample_period_ns(bench.design, lib);
  const SynthResult area_opt =
      synthesize(bench.design, lib, &bench.clib, ts, Objective::Area,
                 Mode::Hierarchical, quick_opts());
  const SynthResult power_opt =
      synthesize(bench.design, lib, &bench.clib, ts, Objective::Power,
                 Mode::Hierarchical, quick_opts());
  ASSERT_TRUE(area_opt.ok && power_opt.ok);
  EXPECT_LT(power_opt.power, area_opt.power);
  EXPECT_GE(power_opt.area, area_opt.area * 0.8);  // trades area for power
}

TEST(Synthesizer, VddScaleNeverWorsensPower) {
  // Pure scaling keeps the binding; when the area optimum exhausts the
  // deadline (the common case with a slower-and-smaller library), it is
  // a no-op -- but it must never make things worse.
  const Library lib = default_library();
  const Benchmark bench = make_benchmark("lat", lib);
  const double ts = 2.5 * min_sample_period_ns(bench.design, lib);
  const SynthResult base = synthesize(bench.design, lib, &bench.clib, ts,
                                      Objective::Area, Mode::Hierarchical,
                                      quick_opts());
  ASSERT_TRUE(base.ok);
  EXPECT_DOUBLE_EQ(base.pt.vdd, 5.0);
  const SynthResult scaled = vdd_scale(base, bench.design, lib, quick_opts());
  EXPECT_LE(scaled.power, base.power);
  EXPECT_EQ(scaled.dp.fus.size(), base.dp.fus.size());
  EXPECT_EQ(scaled.dp.regs.size(), base.dp.regs.size());
}

TEST(Synthesizer, VddScaledAreaBaselineLowersPower) {
  // The Table 4 "Vdd-sc" baseline: area optimization pinned to the
  // lowest feasible supply consumes less power than the 5 V area
  // optimum whenever a lower supply is feasible at all. test1 at L.F.
  // 2.5 synthesizes at 3.3 V (lat's deep serial chains do not, and fall
  // back gracefully -- covered by VddScaleNeverWorsensPower).
  const Library lib = default_library();
  const Benchmark bench = make_benchmark("test1", lib);
  const double ts = 2.5 * min_sample_period_ns(bench.design, lib);
  const SynthResult base = synthesize(bench.design, lib, &bench.clib, ts,
                                      Objective::Area, Mode::Hierarchical,
                                      quick_opts());
  const SynthResult scaled = synthesize_vdd_scaled_area(
      bench.design, lib, &bench.clib, ts, Mode::Hierarchical, quick_opts());
  ASSERT_TRUE(base.ok && scaled.ok);
  EXPECT_LT(scaled.pt.vdd, 5.0);
  EXPECT_LT(scaled.power, base.power);
  EXPECT_GE(scaled.area, base.area);  // lower Vdd leaves less room to share
}

TEST(Synthesizer, TightConstraintKeepsFiveVolts) {
  const Library lib = default_library();
  const Benchmark bench = make_benchmark("lat", lib);
  const double ts = 1.05 * min_sample_period_ns(bench.design, lib);
  const SynthResult base = synthesize(bench.design, lib, &bench.clib, ts,
                                      Objective::Area, Mode::Hierarchical,
                                      quick_opts());
  if (!base.ok) GTEST_SKIP() << "no feasible point at L.F. 1.05";
  const SynthResult scaled = vdd_scale(base, bench.design, lib, quick_opts());
  // Nearly no slack: scaling cannot reach a lower supply.
  EXPECT_DOUBLE_EQ(scaled.pt.vdd, 5.0);
}

TEST(Synthesizer, ResultVerifiesInRtlSim) {
  const Library lib = default_library();
  const Benchmark bench = make_benchmark("dct", lib);
  const double ts = 2.0 * min_sample_period_ns(bench.design, lib);
  const SynthResult r = synthesize(bench.design, lib, &bench.clib, ts,
                                   Objective::Power, Mode::Hierarchical,
                                   quick_opts());
  ASSERT_TRUE(r.ok);
  const Trace trace = make_trace(bench.design.top().num_inputs(), 16, 23);
  const RtlSimResult sim = simulate_rtl(r.dp, 0, trace, lib, r.pt);
  EXPECT_TRUE(sim.ok) << (sim.violations.empty() ? "" : sim.violations[0]);
}

TEST(Synthesizer, FlattenedResultKeepsDfgAlive) {
  const Library lib = default_library();
  SynthResult r;
  {
    const Benchmark bench = make_benchmark("iir", lib);
    const double ts = 1.8 * min_sample_period_ns(bench.design, lib);
    r = synthesize(bench.design, lib, nullptr, ts, Objective::Area,
                   Mode::Flattened, quick_opts());
    ASSERT_TRUE(r.ok);
  }
  // bench is gone, but the flattened DFG is owned by the result...
  // (hierarchical results would dangle; flattened must not).
  EXPECT_NE(r.flat_dfg, nullptr);
  EXPECT_GT(r.dp.behaviors[0].dfg->nodes().size(), 0u);
}

TEST(Synthesizer, ReportsRenderWithoutCrashing) {
  const Library lib = default_library();
  const Benchmark bench = make_benchmark("iir", lib);
  const double ts = 1.8 * min_sample_period_ns(bench.design, lib);
  const SynthResult r = synthesize(bench.design, lib, &bench.clib, ts,
                                   Objective::Area, Mode::Hierarchical,
                                   quick_opts());
  ASSERT_TRUE(r.ok);
  const std::string summary = result_summary(r, lib);
  EXPECT_NE(summary.find("area-optimized"), std::string::npos);
  const std::string arch = architecture_summary(r.dp, lib);
  EXPECT_FALSE(arch.empty());
}

}  // namespace
}  // namespace hsyn
