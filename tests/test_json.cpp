// Unit tests of the util/json recursive-descent parser (the request
// side of the serve protocol): escapes, nesting, numbers, and the full
// catalogue of malformed inputs a client can throw at the daemon.
#include <gtest/gtest.h>

#include <string>

#include "util/json.h"

namespace hsyn {
namespace {

JsonValue parse_ok(const std::string& text) {
  JsonValue v;
  std::string err;
  EXPECT_TRUE(json_parse(text, &v, &err)) << text << ": " << err;
  return v;
}

std::string parse_err(const std::string& text) {
  JsonValue v;
  std::string err;
  EXPECT_FALSE(json_parse(text, &v, &err)) << text;
  EXPECT_FALSE(err.empty()) << text;
  return err;
}

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(parse_ok("null").is_null());
  EXPECT_TRUE(parse_ok("true").as_bool());
  EXPECT_FALSE(parse_ok("false").as_bool(true));
  EXPECT_DOUBLE_EQ(parse_ok("42").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(parse_ok("-3.5e2").as_number(), -350.0);
  EXPECT_EQ(parse_ok("\"hi\"").as_string(), "hi");
  EXPECT_EQ(parse_ok("  123  ").as_int(), 123);
}

TEST(JsonParse, Escapes) {
  EXPECT_EQ(parse_ok("\"a\\\"b\\\\c\\/d\"").as_string(), "a\"b\\c/d");
  EXPECT_EQ(parse_ok("\"\\b\\f\\n\\r\\t\"").as_string(), "\b\f\n\r\t");
  EXPECT_EQ(parse_ok("\"\\u0041\\u00e9\"").as_string(), "A\xc3\xa9");
  // BMP three-byte and astral (surrogate pair) code points.
  EXPECT_EQ(parse_ok("\"\\u20ac\"").as_string(), "\xe2\x82\xac");
  EXPECT_EQ(parse_ok("\"\\ud83d\\ude00\"").as_string(), "\xf0\x9f\x98\x80");
}

TEST(JsonParse, RoundTripsWriterEscaping) {
  const std::string raw = "line1\nline2\t\"quoted\" \\ slash \x01 control";
  const JsonValue v = parse_ok(json_quote(raw));
  EXPECT_EQ(v.as_string(), raw);
}

TEST(JsonParse, ObjectsPreserveOrderAndLookup) {
  const JsonValue v =
      parse_ok(R"({"b": 1, "a": {"nested": [1, 2, {"deep": true}]}, "b": 2})");
  ASSERT_TRUE(v.is_object());
  ASSERT_EQ(v.members().size(), 3u);
  EXPECT_EQ(v.members()[0].first, "b");
  EXPECT_EQ(v.members()[1].first, "a");
  // Duplicate keys: lookup returns the last occurrence.
  EXPECT_EQ(v.int_or("b", -1), 2);
  const JsonValue* a = v.get("a");
  ASSERT_NE(a, nullptr);
  const JsonValue* nested = a->get("nested");
  ASSERT_NE(nested, nullptr);
  ASSERT_TRUE(nested->is_array());
  ASSERT_EQ(nested->items().size(), 3u);
  EXPECT_EQ(nested->items()[1].as_int(), 2);
  EXPECT_TRUE(nested->items()[2].bool_or("deep", false));
}

TEST(JsonParse, TotalAccessorsFallBack) {
  const JsonValue v = parse_ok(R"({"s": "x", "n": 7, "b": true})");
  EXPECT_EQ(v.str_or("missing", "dflt"), "dflt");
  EXPECT_EQ(v.str_or("n", "dflt"), "dflt");  // wrong kind -> fallback
  EXPECT_DOUBLE_EQ(v.num_or("s", 1.5), 1.5);
  EXPECT_TRUE(v.bool_or("missing", true));
  EXPECT_EQ(v.get("missing"), nullptr);
  // Scalar values answer object lookups with the fallback, not a crash.
  EXPECT_EQ(parse_ok("3").str_or("k", "d"), "d");
}

TEST(JsonParse, DeepNestingWithinCap) {
  std::string deep;
  for (int i = 0; i < 200; ++i) deep += "[";
  deep += "1";
  for (int i = 0; i < 200; ++i) deep += "]";
  const JsonValue v = parse_ok(deep);
  const JsonValue* p = &v;
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(p->is_array());
    ASSERT_EQ(p->items().size(), 1u);
    p = &p->items()[0];
  }
  EXPECT_EQ(p->as_int(), 1);
}

TEST(JsonParse, NestingBeyondCapFails) {
  std::string deep;
  for (int i = 0; i < 300; ++i) deep += "[";
  deep += "1";
  for (int i = 0; i < 300; ++i) deep += "]";
  EXPECT_NE(parse_err(deep).find("nesting"), std::string::npos);
}

TEST(JsonParse, MalformedInputs) {
  parse_err("");
  parse_err("{");
  parse_err("}");
  parse_err("[1,");
  parse_err("[1 2]");
  parse_err("{\"a\" 1}");
  parse_err("{\"a\": }");
  parse_err("{a: 1}");
  parse_err("\"unterminated");
  parse_err("\"bad \\q escape\"");
  parse_err("\"\\u12\"");       // truncated hex
  parse_err("\"\\ud800\"");     // unpaired high surrogate
  parse_err("\"\\udc00\"");     // unpaired low surrogate
  parse_err("1.");
  parse_err("1e");
  parse_err("-");
  parse_err("tru");
  parse_err("nul");
  parse_err("1 2");              // trailing garbage
  parse_err("\"a\" \"b\"");
  parse_err(std::string("\"raw\x01control\""));
}

TEST(JsonParse, ErrorsNameAnOffset) {
  EXPECT_NE(parse_err("[1, ]").find("offset"), std::string::npos);
}

TEST(JsonParse, AgreesWithJsonValid) {
  const std::string cases[] = {
      "null", "[]", "{}", "[1,2,3]", R"({"k": [true, null, -2e-3]})",
      "{", "[1,", "x", "\"\\u12\"", "1..2",
  };
  for (const std::string& c : cases) {
    JsonValue v;
    EXPECT_EQ(json_parse(c, &v), json_valid(c)) << c;
  }
}

}  // namespace
}  // namespace hsyn
