#include <gtest/gtest.h>

#include "benchmarks/benchmarks.h"
#include "sched/scheduler.h"
#include "synth/initial.h"

namespace hsyn {
namespace {

SynthContext make_cx(const Design* design, const Library& lib,
                     const ComplexLibrary* clib = nullptr) {
  SynthContext cx;
  cx.design = design;
  cx.lib = &lib;
  cx.clib = clib;
  cx.pt = {5.0, 20.0};
  cx.deadline = kNoDeadline;
  return cx;
}

TEST(Datapath, InitialSolutionIsFullyParallelAndValid) {
  const Library lib = default_library();
  Design design;
  design.add_behavior(make_paulin_iter("paulin"));
  design.set_top("paulin");
  design.validate();

  SynthContext cx = make_cx(&design, lib);
  Datapath dp = initial_solution(design.top(), "paulin", cx);
  // One unit per operation, one register per edge.
  EXPECT_EQ(dp.fus.size(), design.top().nodes().size());
  EXPECT_EQ(dp.regs.size(), design.top().edges().size());
  EXPECT_NO_THROW(dp.validate(lib));
  for (std::size_t i = 0; i < dp.fus.size(); ++i) {
    EXPECT_EQ(dp.unit_load({UnitRef::Kind::Fu, static_cast<int>(i)}), 1);
  }
}

TEST(Datapath, HierInitialUsesChildren) {
  const Library lib = default_library();
  const Benchmark bench = make_benchmark("iir", lib);
  SynthContext cx = make_cx(&bench.design, lib, &bench.clib);
  Datapath dp = initial_solution(bench.design.top(), "iir", cx);
  EXPECT_EQ(dp.children.size(), 3u);  // one instance per biquad node
  EXPECT_NO_THROW(dp.validate(lib));
}

TEST(Datapath, ChildUnitDeepCopy) {
  const Library lib = default_library();
  const Benchmark bench = make_benchmark("iir", lib);
  SynthContext cx = make_cx(&bench.design, lib, &bench.clib);
  Datapath dp = initial_solution(bench.design.top(), "iir", cx);
  Datapath copy = dp;
  ASSERT_EQ(copy.children.size(), dp.children.size());
  EXPECT_NE(copy.children[0].impl.get(), dp.children[0].impl.get());
  // Mutating the copy leaves the original untouched.
  copy.children[0].impl->fus.clear();
  EXPECT_FALSE(dp.children[0].impl->fus.empty());
}

TEST(Datapath, PruneUnusedCompactsIndices) {
  const Library lib = default_library();
  Design design;
  design.add_behavior(make_paulin_iter("paulin"));
  design.set_top("paulin");
  design.validate();
  SynthContext cx = make_cx(&design, lib);
  Datapath dp = initial_solution(design.top(), "paulin", cx);
  // Rebind all work of unit 1 onto unit 0's twin... simply move inv 1 to
  // unit 0 if compatible; here just drop a register user instead:
  // merge reg 1 into reg 0 and prune.
  for (int& r : dp.behaviors[0].edge_reg) {
    if (r == 1) r = 0;
  }
  const std::size_t before = dp.regs.size();
  dp.prune_unused();
  EXPECT_EQ(dp.regs.size(), before - 1);
  EXPECT_NO_THROW(dp.validate(lib));
}

TEST(Datapath, ProfileOfScheduledModule) {
  const Library lib = default_library();
  Design design;
  design.add_behavior(make_biquad("biquad"));
  design.set_top("biquad");
  design.validate();
  SynthContext cx = make_cx(&design, lib);
  Datapath dp = initial_solution(design.top(), "biquad", cx);
  ASSERT_TRUE(schedule_datapath(dp, lib, cx.pt, kNoDeadline).ok);
  const Profile p = dp.profile(0, lib, cx.pt);
  ASSERT_EQ(p.in.size(), 8u);
  ASSERT_EQ(p.out.size(), 3u);
  for (const int a : p.in) EXPECT_EQ(a, 0);
  // y = b0*x + s1: mult (3) + add (1) = 4 cycles at the reference point.
  EXPECT_EQ(p.out[0], 4);
  EXPECT_EQ(p.makespan(), dp.behaviors[0].makespan);
}

TEST(Datapath, InvInputEdgesExcludesChainInternal) {
  const Library lib = default_library();
  Design design;
  Dfg chain("chain3", 4, 1);
  const int a1 = chain.add_node(Op::Add);
  const int a2 = chain.add_node(Op::Add);
  const int a3 = chain.add_node(Op::Add);
  chain.connect({kPrimaryIn, 0}, {{a1, 0}});
  chain.connect({kPrimaryIn, 1}, {{a1, 1}});
  chain.connect({kPrimaryIn, 2}, {{a2, 1}});
  chain.connect({kPrimaryIn, 3}, {{a3, 1}});
  chain.connect({a1, 0}, {{a2, 0}});
  chain.connect({a2, 0}, {{a3, 0}});
  chain.connect({a3, 0}, {{kPrimaryOut, 0}});
  chain.validate();
  design.add_behavior(std::move(chain));
  Dfg top("t", 4, 1);
  const int h = top.add_hier_node("chain3", 4, 1);
  for (int p = 0; p < 4; ++p) top.connect({kPrimaryIn, p}, {{h, p}});
  top.connect({h, 0}, {{kPrimaryOut, 0}});
  design.add_behavior(std::move(top));
  design.set_top("t");
  design.validate();

  const ComplexLibrary clib = default_complex_library(design, lib);
  const ComplexLibrary::Template* t = clib.find("chain3_chain");
  ASSERT_NE(t, nullptr);
  Datapath dp = ComplexLibrary::instantiate(*t, "chain3");
  EXPECT_NO_THROW(dp.validate(lib));
  ASSERT_EQ(dp.behaviors[0].invs.size(), 1u);  // one chained invocation
  EXPECT_EQ(dp.behaviors[0].invs[0].nodes.size(), 3u);
  // Four external operands; the two chain-internal edges are excluded.
  EXPECT_EQ(dp.inv_input_edges(0, 0).size(), 4u);
  // Chained module executes in a single chained_add3 pass: makespan is
  // the unit's cycle count (2 at the reference point).
  ASSERT_TRUE(schedule_datapath(dp, lib, {5.0, 20.0}, kNoDeadline).ok);
  EXPECT_EQ(dp.behaviors[0].makespan, 2);
  EXPECT_EQ(dp.fus.size(), 1u);
}

TEST(Datapath, ValidateCatchesWrongUnitKind) {
  const Library lib = default_library();
  Design design;
  design.add_behavior(make_paulin_iter("paulin"));
  design.set_top("paulin");
  SynthContext cx = make_cx(&design, lib);
  Datapath dp = initial_solution(design.top(), "paulin", cx);
  // Point a mult node's invocation at an adder unit.
  BehaviorImpl& bi = dp.behaviors[0];
  int mult_inv = -1, add_unit = -1;
  for (std::size_t i = 0; i < bi.invs.size(); ++i) {
    const Node& n = bi.dfg->node(bi.invs[i].nodes[0]);
    if (n.op == Op::Mult && mult_inv < 0) mult_inv = static_cast<int>(i);
    if (n.op == Op::Add && add_unit < 0) add_unit = bi.invs[i].unit.idx;
  }
  ASSERT_GE(mult_inv, 0);
  ASSERT_GE(add_unit, 0);
  bi.invs[static_cast<std::size_t>(mult_inv)].unit.idx = add_unit;
  EXPECT_THROW(dp.validate(lib), std::logic_error);
}

TEST(Datapath, TotalComponentsRecursive) {
  const Library lib = default_library();
  const Benchmark bench = make_benchmark("lat", lib);
  SynthContext cx = make_cx(&bench.design, lib, &bench.clib);
  Datapath dp = initial_solution(bench.design.top(), "lat", cx);
  int flat_units = 0;
  for (const ChildUnit& c : dp.children) {
    flat_units += static_cast<int>(c.impl->fus.size() + c.impl->regs.size());
  }
  EXPECT_EQ(dp.total_components(),
            static_cast<int>(dp.fus.size() + dp.regs.size()) + flat_units);
}

}  // namespace
}  // namespace hsyn
