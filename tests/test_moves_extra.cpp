// Deeper move-engine coverage: chain fusion/unfusion, multi-way merging
// via repeated sharing moves, determinism, and Graphviz export.
#include <gtest/gtest.h>

#include "benchmarks/benchmarks.h"
#include "dfg/dot.h"
#include "power/rtlsim.h"
#include "rtl/cost.h"
#include "sched/scheduler.h"
#include "synth/initial.h"
#include "synth/moves.h"
#include "util/fmt.h"

namespace hsyn {
namespace {

const OpPoint kRef{5.0, 20.0};

/// A behavior with an obvious 3-add chain for fusion.
Dfg chain_rich_dfg() {
  Dfg d("chains", 6, 2);
  const int a1 = d.add_node(Op::Add);
  const int a2 = d.add_node(Op::Add);
  const int a3 = d.add_node(Op::Add);
  const int m = d.add_node(Op::Mult);
  d.connect({kPrimaryIn, 0}, {{a1, 0}});
  d.connect({kPrimaryIn, 1}, {{a1, 1}});
  d.connect({kPrimaryIn, 2}, {{a2, 1}});
  d.connect({kPrimaryIn, 3}, {{a3, 1}});
  d.connect({kPrimaryIn, 4}, {{m, 0}});
  d.connect({kPrimaryIn, 5}, {{m, 1}});
  d.connect({a1, 0}, {{a2, 0}});
  d.connect({a2, 0}, {{a3, 0}});
  d.connect({a3, 0}, {{kPrimaryOut, 0}});
  d.connect({m, 0}, {{kPrimaryOut, 1}});
  d.validate();
  return d;
}

struct Fixture {
  Library lib = default_library();
  Design design;
  SynthContext cx;
  Datapath dp;

  Fixture() {
    design.add_behavior(chain_rich_dfg());
    design.set_top("chains");
    design.validate();
    cx.design = &design;
    cx.lib = &lib;
    cx.pt = kRef;
    cx.obj = Objective::Area;
    cx.trace = make_trace(6, 12, 3);
    dp = initial_solution(design.top(), "chains", cx);
    const SchedResult r = schedule_datapath(dp, lib, kRef, kNoDeadline);
    cx.deadline = r.makespan + 6;
    schedule_datapath(dp, lib, kRef, cx.deadline);
  }
};

TEST(MovesExtra, ChainFusionDiscoversChainedAdder) {
  Fixture f;
  // Iterate sharing moves; expect a chain fusion to appear (three add1
  // at 90 area + 2 registers vs one chained_add3 at 90 with none).
  Datapath cur = f.dp;
  bool fused = false;
  for (int step = 0; step < 5; ++step) {
    const Move m = best_sharing_move(cur, f.cx);
    if (!m.valid) break;
    if (m.kind == "C:chain-fuse") fused = true;
    cur = m.result;
  }
  EXPECT_TRUE(fused);
  // The fused design stays functionally correct.
  const RtlSimResult sim = simulate_rtl(cur, 0, f.cx.trace, f.lib, kRef);
  EXPECT_TRUE(sim.ok) << (sim.violations.empty() ? "" : sim.violations[0]);
  // And some invocation now carries multiple nodes.
  bool has_chain_inv = false;
  for (const Invocation& inv : cur.behaviors[0].invs) {
    has_chain_inv |= inv.nodes.size() > 1;
  }
  EXPECT_TRUE(has_chain_inv);
}

TEST(MovesExtra, ChainUnfuseRestoresSingletons) {
  Fixture f;
  Datapath cur = f.dp;
  // Fuse first.
  for (int step = 0; step < 5; ++step) {
    const Move m = best_sharing_move(cur, f.cx);
    if (!m.valid) break;
    cur = m.result;
    bool chained = false;
    for (const Invocation& inv : cur.behaviors[0].invs) {
      chained |= inv.nodes.size() > 1;
    }
    if (chained) break;
  }
  // Then the splitting generator must offer an unfuse that verifies.
  SynthContext cx2 = f.cx;
  cx2.obj = Objective::Power;  // de-sharing is a power move
  const Move split = best_splitting_move(cur, cx2);
  if (split.valid && split.kind == "D:chain-unfuse") {
    const RtlSimResult sim =
        simulate_rtl(split.result, 0, f.cx.trace, f.lib, kRef);
    EXPECT_TRUE(sim.ok) << (sim.violations.empty() ? "" : sim.violations[0]);
  }
}

TEST(MovesExtra, RepeatedSharingMergesManyModules) {
  // fir16's four dot-product instances collapse step by step; after
  // enough sharing moves at a loose deadline at most two remain.
  const Library lib = default_library();
  const Benchmark bench = make_benchmark("fir16", lib);
  SynthContext cx;
  cx.design = &bench.design;
  cx.lib = &lib;
  cx.clib = &bench.clib;
  cx.pt = kRef;
  cx.obj = Objective::Area;
  cx.trace = make_trace(32, 8, 3);
  Datapath dp = initial_solution(bench.design.top(), "fir16", cx);
  const SchedResult r = schedule_datapath(dp, lib, kRef, kNoDeadline);
  cx.deadline = r.makespan * 5;
  schedule_datapath(dp, lib, kRef, cx.deadline);

  Datapath cur = dp;
  for (int step = 0; step < 8; ++step) {
    const Move m = best_sharing_move(cur, cx);
    if (!m.valid || m.gain <= 0) break;
    cur = m.result;
  }
  EXPECT_LE(cur.children.size(), 2u);
  const RtlSimResult sim = simulate_rtl(cur, 0, cx.trace, lib, kRef);
  EXPECT_TRUE(sim.ok) << (sim.violations.empty() ? "" : sim.violations[0]);
}

TEST(MovesExtra, MoveSelectionIsDeterministic) {
  Fixture f;
  const Move a = best_sharing_move(f.dp, f.cx);
  const Move b = best_sharing_move(f.dp, f.cx);
  ASSERT_EQ(a.valid, b.valid);
  if (a.valid) {
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.desc, b.desc);
    EXPECT_DOUBLE_EQ(a.gain, b.gain);
  }
  const Move c = best_replace_move(f.dp, f.cx);
  const Move d = best_replace_move(f.dp, f.cx);
  ASSERT_EQ(c.valid, d.valid);
  if (c.valid) {
    EXPECT_EQ(c.desc, d.desc);
  }
}

TEST(MovesExtra, DotExportContainsAllNodes) {
  const Library lib = default_library();
  const Benchmark bench = make_benchmark("test1", lib);
  const std::string dot = dfg_to_dot(bench.design.top());
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  for (const Node& n : bench.design.top().nodes()) {
    EXPECT_NE(dot.find(strf("n%d", n.id)), std::string::npos);
  }
  EXPECT_NE(dot.find("DFG1"), std::string::npos);  // labels preserved
}

TEST(MovesExtra, EmbeddingMergedModuleCanEmbedAgain) {
  // Three-way merging: embed (A,B), then embed the result with C.
  const Library lib = default_library();
  const Benchmark bench = make_benchmark("test1", lib);
  SynthContext cx;
  cx.design = &bench.design;
  cx.lib = &lib;
  cx.clib = &bench.clib;
  cx.pt = kRef;
  cx.obj = Objective::Area;
  cx.trace = make_trace(8, 8, 3);
  Datapath dp = initial_solution(bench.design.top(), "test1", cx);
  const SchedResult r = schedule_datapath(dp, lib, kRef, kNoDeadline);
  cx.deadline = r.makespan * 4;
  schedule_datapath(dp, lib, kRef, cx.deadline);

  Datapath cur = dp;
  int embeds = 0;
  for (int step = 0; step < 10; ++step) {
    const Move m = best_sharing_move(cur, cx);
    if (!m.valid) break;
    if (m.kind == "C:embed") ++embeds;
    cur = m.result;
  }
  EXPECT_GE(embeds, 1);
  // Find a child with more than one behavior and check it verifies.
  for (std::size_t c = 0; c < cur.children.size(); ++c) {
    if (cur.children[c].impl->behaviors.size() >= 2) {
      const RtlSimResult sim = simulate_rtl(cur, 0, cx.trace, lib, kRef);
      EXPECT_TRUE(sim.ok) << (sim.violations.empty() ? "" : sim.violations[0]);
      return;
    }
  }
}

}  // namespace
}  // namespace hsyn
