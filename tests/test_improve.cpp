#include <gtest/gtest.h>

#include "benchmarks/benchmarks.h"
#include "power/rtlsim.h"
#include "sched/scheduler.h"
#include "synth/improve.h"
#include "synth/initial.h"

namespace hsyn {
namespace {

const OpPoint kRef{5.0, 20.0};

struct Fixture {
  Library lib = default_library();
  Benchmark bench;
  SynthContext cx;
  Datapath init;

  Fixture(const std::string& name, Objective obj, double laxity)
      : bench(make_benchmark(name, lib)) {
    cx.design = &bench.design;
    cx.lib = &lib;
    cx.clib = &bench.clib;
    cx.pt = kRef;
    cx.obj = obj;
    cx.trace = make_trace(bench.design.top().num_inputs(), 16, 5);
    cx.opts.max_passes = 4;
    cx.opts.max_moves_per_pass = 8;
    init = initial_solution(bench.design.top(), name, cx);
    const SchedResult r = schedule_datapath(init, lib, kRef, kNoDeadline);
    cx.deadline = static_cast<int>(r.makespan * laxity);
    schedule_datapath(init, lib, kRef, cx.deadline);
  }
};

TEST(Improve, AreaObjectiveNeverWorsens) {
  Fixture f("iir", Objective::Area, 2.0);
  ImproveStats stats;
  const double before = cost_of(f.init, f.cx);
  const Datapath out = improve(f.init, f.cx, &stats);
  const double after = cost_of(out, f.cx);
  EXPECT_LE(after, before);
  EXPECT_GT(stats.passes, 0);
  EXPECT_GE(stats.moves_applied, stats.moves_kept);
  EXPECT_NEAR(stats.final_cost, after, 1e-9);
}

TEST(Improve, AreaObjectiveActuallyImproves) {
  Fixture f("test1", Objective::Area, 2.5);
  const double before = cost_of(f.init, f.cx);
  const Datapath out = improve(f.init, f.cx);
  EXPECT_LT(cost_of(out, f.cx), before * 0.9);
}

TEST(Improve, PowerObjectiveImprovesAtSlack) {
  Fixture f("test1", Objective::Power, 2.5);
  const double before = cost_of(f.init, f.cx);
  const Datapath out = improve(f.init, f.cx);
  EXPECT_LT(cost_of(out, f.cx), before);
}

TEST(Improve, ResultMeetsDeadlineAndValidates) {
  Fixture f("dct", Objective::Area, 2.0);
  Datapath out = improve(f.init, f.cx);
  EXPECT_NO_THROW(out.validate(f.lib));
  const SchedResult r = schedule_datapath(out, f.lib, kRef, f.cx.deadline);
  EXPECT_TRUE(r.ok) << r.reason;
}

TEST(Improve, ResultFunctionallyCorrect) {
  Fixture f("lat", Objective::Area, 2.2);
  const Datapath out = improve(f.init, f.cx);
  const Trace trace = make_trace(f.bench.design.top().num_inputs(), 16, 77);
  const RtlSimResult r = simulate_rtl(out, 0, trace, f.lib, kRef);
  EXPECT_TRUE(r.ok) << (r.violations.empty() ? "" : r.violations[0]);
}

TEST(Improve, GreedyOnlyModeStillSafe) {
  Fixture f("iir", Objective::Area, 2.0);
  f.cx.opts.enable_negative_gain = false;
  const double before = cost_of(f.init, f.cx);
  const Datapath out = improve(f.init, f.cx);
  EXPECT_LE(cost_of(out, f.cx), before);
}

TEST(Improve, VariableDepthBeatsOrMatchesGreedy) {
  Fixture f("test1", Objective::Area, 2.5);
  SynthContext greedy_cx = f.cx;
  greedy_cx.opts.enable_negative_gain = false;
  const Datapath full = improve(f.init, f.cx);
  const Datapath greedy = improve(f.init, greedy_cx);
  EXPECT_LE(cost_of(full, f.cx), cost_of(greedy, f.cx) * 1.001);
}

TEST(Improve, ZeroPassBudgetIsIdentity) {
  Fixture f("iir", Objective::Area, 2.0);
  f.cx.opts.max_passes = 0;
  const Datapath out = improve(f.init, f.cx);
  EXPECT_NEAR(cost_of(out, f.cx), cost_of(f.init, f.cx), 1e-9);
}

}  // namespace
}  // namespace hsyn
