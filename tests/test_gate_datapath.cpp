// The lowest-level verification chain: behavioral evaluation, the
// cycle-accurate RTL simulator and the full gate-level network must
// agree bit-for-bit on the same synthesized architecture.
#include <gtest/gtest.h>

#include "benchmarks/benchmarks.h"
#include "dfg/flatten.h"
#include "gates/gate_datapath.h"
#include "power/rtlsim.h"
#include "sched/scheduler.h"
#include "synth/initial.h"
#include "synth/moves.h"
#include "synth/synthesizer.h"

namespace hsyn {
namespace {

const OpPoint kRef{5.0, 20.0};

struct Flat {
  Library lib = default_library();
  Design design;
  Datapath dp;

  explicit Flat(Dfg dfg) {
    const std::string name = dfg.name();
    design.add_behavior(std::move(dfg));
    design.set_top(name);
    SynthContext cx;
    cx.design = &design;
    cx.lib = &lib;
    cx.pt = kRef;
    dp = initial_solution(design.top(), name, cx);
    schedule_datapath(dp, lib, kRef, kNoDeadline);
  }
};

TEST(GateDatapath, TripleAgreementOnParallelPaulin) {
  Flat f(make_paulin_iter("paulin"));
  const Trace trace = make_trace(6, 12, 21);

  const auto behavioral = eval_dfg(f.design.top(), nullptr, trace);
  const RtlSimResult rtl = simulate_rtl(f.dp, 0, trace, f.lib, kRef);
  ASSERT_TRUE(rtl.ok) << (rtl.violations.empty() ? "" : rtl.violations[0]);

  gates::GateDatapath g = gates::build_gate_datapath(f.dp, 0, f.lib, kRef);
  const auto gate_out = gates::run_gate_datapath(g, trace);

  ASSERT_EQ(gate_out.size(), behavioral.size());
  for (std::size_t t = 0; t < trace.size(); ++t) {
    EXPECT_EQ(gate_out[t], behavioral[t]) << "sample " << t;
    EXPECT_EQ(rtl.outputs[t], behavioral[t]) << "sample " << t;
  }
}

TEST(GateDatapath, TripleAgreementOnSharedArchitecture) {
  Flat f(make_paulin_iter("paulin"));
  // Share all multipliers on one unit and all adders on another -- a
  // heavily muxed architecture with WAR-constrained registers.
  BehaviorImpl& bi = f.dp.behaviors[0];
  int mult_unit = -1, add_unit = -1;
  for (Invocation& inv : bi.invs) {
    const Op op = bi.dfg->node(inv.nodes[0]).op;
    if (op == Op::Mult) {
      if (mult_unit < 0) {
        mult_unit = inv.unit.idx;
      } else {
        inv.unit.idx = mult_unit;
      }
    } else if (op == Op::Add) {
      if (add_unit < 0) {
        add_unit = inv.unit.idx;
      } else {
        inv.unit.idx = add_unit;
      }
    }
  }
  f.dp.prune_unused();
  ASSERT_TRUE(schedule_datapath(f.dp, f.lib, kRef, kNoDeadline).ok);

  const Trace trace = make_trace(6, 10, 33);
  const auto behavioral = eval_dfg(f.design.top(), nullptr, trace);
  gates::GateDatapath g = gates::build_gate_datapath(f.dp, 0, f.lib, kRef);
  const auto gate_out = gates::run_gate_datapath(g, trace);
  for (std::size_t t = 0; t < trace.size(); ++t) {
    EXPECT_EQ(gate_out[t], behavioral[t]) << "sample " << t;
  }
}

TEST(GateDatapath, AgreementOnSynthesizedFlatDesign) {
  // End to end: run the real flattened synthesizer, then the gate level
  // must still reproduce the behavior.
  const Library lib = default_library();
  const Benchmark bench = make_benchmark("iir", lib);
  const double ts = 2.0 * min_sample_period_ns(bench.design, lib);
  SynthOptions opts;
  opts.max_passes = 2;
  const SynthResult r = synthesize(bench.design, lib, &bench.clib, ts,
                                   Objective::Area, Mode::Flattened, opts);
  ASSERT_TRUE(r.ok);
  const Dfg& flat = *r.dp.behaviors[0].dfg;

  const Trace trace = make_trace(flat.num_inputs(), 6, 5);
  const auto behavioral = eval_dfg(flat, nullptr, trace);
  gates::GateDatapath g = gates::build_gate_datapath(r.dp, 0, lib, r.pt);
  const auto gate_out = gates::run_gate_datapath(g, trace);
  for (std::size_t t = 0; t < trace.size(); ++t) {
    EXPECT_EQ(gate_out[t], behavioral[t]) << "sample " << t;
  }
}

TEST(GateDatapath, ChainedInvocationsExecuteCombinationally) {
  Flat f(make_dot4_seq("dotseq"));
  // Fuse the three accumulating adds onto a chained_add3.
  SynthContext cx;
  cx.design = &f.design;
  cx.lib = &f.lib;
  cx.pt = kRef;
  cx.obj = Objective::Area;
  cx.trace = make_trace(8, 8, 3);
  const SchedResult sr = schedule_datapath(f.dp, f.lib, kRef, kNoDeadline);
  cx.deadline = sr.makespan + 4;
  Datapath cur = f.dp;
  for (int step = 0; step < 6; ++step) {
    const Move m = best_sharing_move(cur, cx);
    if (!m.valid) break;
    cur = m.result;
  }
  bool chained = false;
  for (const Invocation& inv : cur.behaviors[0].invs) {
    chained |= inv.nodes.size() > 1;
  }
  if (!chained) GTEST_SKIP() << "no chain formed at this deadline";

  const Trace trace = make_trace(8, 8, 13);
  const auto behavioral = eval_dfg(f.design.top(), nullptr, trace);
  gates::GateDatapath g = gates::build_gate_datapath(cur, 0, f.lib, kRef);
  const auto gate_out = gates::run_gate_datapath(g, trace);
  for (std::size_t t = 0; t < trace.size(); ++t) {
    EXPECT_EQ(gate_out[t], behavioral[t]) << "sample " << t;
  }
}

TEST(GateDatapath, RejectsHierarchicalDatapaths) {
  const Library lib = default_library();
  const Benchmark bench = make_benchmark("iir", lib);
  SynthContext cx;
  cx.design = &bench.design;
  cx.lib = &lib;
  cx.clib = &bench.clib;
  cx.pt = kRef;
  Datapath dp = initial_solution(bench.design.top(), "iir", cx);
  schedule_datapath(dp, lib, kRef, kNoDeadline);
  EXPECT_THROW(gates::build_gate_datapath(dp, 0, lib, kRef), std::logic_error);
}

TEST(GateDatapath, TogglesTrackSharingPenalty) {
  // Per-multiplier toggles rise when one multiplier serves many
  // uncorrelated operations -- the gate-level ground truth behind the
  // RTL model's sharing/activity penalty.
  Flat parallel(make_paulin_iter("paulin"));
  Flat shared(make_paulin_iter("paulin"));
  BehaviorImpl& bi = shared.dp.behaviors[0];
  int mult_unit = -1;
  int mults = 0;
  for (Invocation& inv : bi.invs) {
    if (bi.dfg->node(inv.nodes[0]).op != Op::Mult) continue;
    ++mults;
    if (mult_unit < 0) {
      mult_unit = inv.unit.idx;
    } else {
      inv.unit.idx = mult_unit;
    }
  }
  shared.dp.prune_unused();
  ASSERT_TRUE(schedule_datapath(shared.dp, shared.lib, kRef, kNoDeadline).ok);

  const Trace trace = make_trace(6, 24, 3, 0.02);  // correlated samples
  gates::GateDatapath gp =
      gates::build_gate_datapath(parallel.dp, 0, parallel.lib, kRef);
  gates::GateDatapath gs =
      gates::build_gate_datapath(shared.dp, 0, shared.lib, kRef);
  gates::run_gate_datapath(gp, trace);
  gates::run_gate_datapath(gs, trace);
  // Whole-design energy: sharing saves gates but pays muxing/decorrelated
  // streams; per-evaluation multiplier switching must not *drop* under
  // sharing (each shared evaluation sees a less correlated operand
  // stream). Compare switched cap per design; the shared design performs
  // the same work with ~1/5 of the multiplier hardware, so anything above
  // ~0.4x the parallel design's switching demonstrates the penalty.
  EXPECT_GT(gs.net.switched_cap(), gp.net.switched_cap() * 0.4);
}

}  // namespace
}  // namespace hsyn
