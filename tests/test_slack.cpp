#include <gtest/gtest.h>

#include "benchmarks/benchmarks.h"
#include "sched/scheduler.h"
#include "sched/slack.h"
#include "synth/initial.h"

namespace hsyn {
namespace {

const OpPoint kRef{5.0, 20.0};

TEST(Slack, FuBudgetGrowsWithDeadline) {
  const Library lib = default_library();
  Design design;
  design.add_behavior(make_paulin_iter("paulin"));
  design.set_top("paulin");
  design.validate();
  SynthContext cx;
  cx.design = &design;
  cx.lib = &lib;
  cx.pt = kRef;
  Datapath dp = initial_solution(design.top(), "paulin", cx);
  ASSERT_TRUE(schedule_datapath(dp, lib, kRef, kNoDeadline).ok);
  const int makespan = dp.behaviors[0].makespan;

  // Pick the x1 = x + dx adder: off the long multiply chain, so at a
  // relaxed deadline it has a generous latency budget.
  int add_inv = -1;
  for (std::size_t i = 0; i < dp.behaviors[0].invs.size(); ++i) {
    if (dp.behaviors[0].dfg->node(dp.behaviors[0].invs[i].nodes[0]).label ==
        "x1") {
      add_inv = static_cast<int>(i);
    }
  }
  ASSERT_GE(add_inv, 0);

  const auto tight =
      derive_fu_latency_budget(dp, 0, add_inv, lib, kRef, makespan);
  const auto loose =
      derive_fu_latency_budget(dp, 0, add_inv, lib, kRef, makespan + 6);
  ASSERT_TRUE(tight.has_value());
  ASSERT_TRUE(loose.has_value());
  EXPECT_GE(*loose, *tight + 6);
  // Current latency (1 cycle) always fits its own schedule.
  EXPECT_GE(*tight, 1);
}

TEST(Slack, ChildConstraintReflectsEnvironment) {
  // Mirrors Example 2: a module whose output is consumed late can have
  // its output deadline relaxed well beyond its current profile.
  const Library lib = default_library();
  const Benchmark bench = make_benchmark("test1", lib);
  SynthContext cx;
  cx.design = &bench.design;
  cx.lib = &lib;
  cx.clib = &bench.clib;
  cx.pt = kRef;
  Datapath dp = initial_solution(bench.design.top(), "test1", cx);
  ASSERT_TRUE(schedule_datapath(dp, lib, kRef, kNoDeadline).ok);
  const int makespan = dp.behaviors[0].makespan;
  const int deadline = makespan + 5;

  for (std::size_t c = 0; c < dp.children.size(); ++c) {
    const auto mc =
        derive_child_constraint(dp, 0, static_cast<int>(c), lib, kRef, deadline);
    ASSERT_TRUE(mc.has_value()) << "child " << c;
    const Profile p = dp.children[c].impl->profile(0, lib, kRef);
    // The current profile must satisfy the derived constraint (the
    // schedule is feasible as-is).
    ASSERT_EQ(mc->out_deadline.size(), p.out.size());
    for (std::size_t j = 0; j < p.out.size(); ++j) {
      EXPECT_GE(mc->out_deadline[j], p.out[j]) << "child " << c << " out " << j;
    }
    EXPECT_GE(mc->max_busy, p.makespan());
  }
}

TEST(Slack, RelaxedDeadlinePropagatesToChildren) {
  const Library lib = default_library();
  const Benchmark bench = make_benchmark("iir", lib);
  SynthContext cx;
  cx.design = &bench.design;
  cx.lib = &lib;
  cx.clib = &bench.clib;
  cx.pt = kRef;
  Datapath dp = initial_solution(bench.design.top(), "iir", cx);
  ASSERT_TRUE(schedule_datapath(dp, lib, kRef, kNoDeadline).ok);
  const int makespan = dp.behaviors[0].makespan;

  // The last biquad in the cascade absorbs all added slack.
  const BehaviorImpl& bi = dp.behaviors[0];
  int last_child = -1;
  int last_start = -1;
  for (std::size_t i = 0; i < bi.invs.size(); ++i) {
    if (bi.inv_start[i] > last_start) {
      last_start = bi.inv_start[i];
      last_child = bi.invs[i].unit.idx;
    }
  }
  const auto tight =
      derive_child_constraint(dp, 0, last_child, lib, kRef, makespan);
  const auto loose =
      derive_child_constraint(dp, 0, last_child, lib, kRef, makespan + 10);
  ASSERT_TRUE(tight && loose);
  EXPECT_EQ(loose->out_deadline[0], tight->out_deadline[0] + 10);
}

TEST(Slack, UnusedChildYieldsNullopt) {
  const Library lib = default_library();
  const Benchmark bench = make_benchmark("iir", lib);
  SynthContext cx;
  cx.design = &bench.design;
  cx.lib = &lib;
  cx.clib = &bench.clib;
  cx.pt = kRef;
  Datapath dp = initial_solution(bench.design.top(), "iir", cx);
  ASSERT_TRUE(schedule_datapath(dp, lib, kRef, kNoDeadline).ok);
  const auto mc = derive_child_constraint(dp, 0, 99, lib, kRef, 100);
  EXPECT_FALSE(mc.has_value());
}

}  // namespace
}  // namespace hsyn
