// Operating-point behavior: pinned supplies, power monotonicity in Vdd
// for a fixed architecture, and alignment invariants.
#include <gtest/gtest.h>

#include "benchmarks/benchmarks.h"
#include "dfg/flatten.h"
#include "power/estimator.h"
#include "sched/scheduler.h"
#include "synth/initial.h"
#include "synth/synthesizer.h"

namespace hsyn {
namespace {

TEST(VddPoints, ForcedVddIsRespected) {
  const Library lib = default_library();
  const Benchmark bench = make_benchmark("test1", lib);
  const double ts = 3.0 * min_sample_period_ns(bench.design, lib);
  SynthOptions opts;
  opts.max_passes = 2;
  opts.force_vdd = 3.3;
  const SynthResult r = synthesize(bench.design, lib, &bench.clib, ts,
                                   Objective::Power, Mode::Hierarchical, opts);
  ASSERT_TRUE(r.ok) << r.fail_reason;
  EXPECT_DOUBLE_EQ(r.pt.vdd, 3.3);
}

TEST(VddPoints, EnergyFallsWithVddForFixedArchitecture) {
  const Library lib = default_library();
  Design design;
  design.add_behavior(make_biquad("biquad"));
  design.set_top("biquad");
  SynthContext cx;
  cx.design = &design;
  cx.lib = &lib;
  cx.pt = {5.0, 20.0};
  Datapath dp = initial_solution(design.top(), "biquad", cx);
  const Trace trace = make_trace(8, 24, 9);

  double prev = 1e18;
  for (const double vdd : {5.0, 3.3, 2.4}) {
    const OpPoint pt{vdd, 20.0};
    invalidate_schedules(dp);
    ASSERT_TRUE(schedule_datapath(dp, lib, pt, kNoDeadline).ok);
    const double e = energy_of(dp, 0, trace, lib, pt).total();
    // Schedule lengthens at lower Vdd (more ctrl/clock cycles) but the
    // quadratic supply term dominates.
    EXPECT_LT(e, prev);
    prev = e;
  }
}

TEST(VddPoints, AlignmentNeverWorsensMakespan) {
  const Library lib = default_library();
  for (const char* name : {"lat", "iir", "avenhaus_cascade", "dct"}) {
    const Benchmark bench = make_benchmark(name, lib);
    SynthContext cx;
    cx.design = &bench.design;
    cx.lib = &lib;
    cx.clib = &bench.clib;
    cx.pt = {5.0, 20.0};
    Datapath a = initial_solution(bench.design.top(), name, cx);
    Datapath b = a;
    const SchedResult plain = schedule_datapath(a, lib, cx.pt, kNoDeadline);
    ASSERT_TRUE(plain.ok);
    const int aligned = align_child_profiles(b, lib, cx.pt);
    ASSERT_GE(aligned, 0) << name;
    EXPECT_LE(aligned, plain.makespan) << name;
  }
}

TEST(VddPoints, AlignmentMatchesFlatCriticalPathOnCascades) {
  // The headline property of profile alignment: the hierarchical initial
  // solution of a cascade reaches the flattened critical path.
  const Library lib = default_library();
  const Benchmark bench = make_benchmark("lat", lib);
  const Dfg flat = flatten_top(bench.design);
  const OpPoint pt{5.0, 20.0};

  SynthContext cxh;
  cxh.design = &bench.design;
  cxh.lib = &lib;
  cxh.clib = &bench.clib;
  cxh.pt = pt;
  Datapath h = initial_solution(bench.design.top(), "lat", cxh);
  const int hier_makespan = align_child_profiles(h, lib, pt);

  SynthContext cxf;
  cxf.design = nullptr;
  cxf.lib = &lib;
  cxf.pt = pt;
  Datapath f = initial_solution(flat, "lat_flat", cxf);
  const SchedResult fr = schedule_datapath(f, lib, pt, kNoDeadline);
  ASSERT_TRUE(fr.ok);
  EXPECT_EQ(hier_makespan, fr.makespan);
}

TEST(VddPoints, ScheduleSkipsCleanChildrenButHonorsInvalidation) {
  const Library lib = default_library();
  const Benchmark bench = make_benchmark("iir", lib);
  SynthContext cx;
  cx.design = &bench.design;
  cx.lib = &lib;
  cx.clib = &bench.clib;
  cx.pt = {5.0, 20.0};
  Datapath dp = initial_solution(bench.design.top(), "iir", cx);
  ASSERT_TRUE(schedule_datapath(dp, lib, cx.pt, kNoDeadline).ok);
  const int m5 = dp.behaviors[0].makespan;

  // Rescheduling at a new operating point without invalidation would
  // reuse stale child cycle counts; invalidate_schedules prevents that.
  const OpPoint low{3.3, 20.0};
  invalidate_schedules(dp);
  ASSERT_TRUE(schedule_datapath(dp, lib, low, kNoDeadline).ok);
  EXPECT_GT(dp.behaviors[0].makespan, m5);
}

}  // namespace
}  // namespace hsyn
