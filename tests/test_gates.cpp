// Gate-level substrate: functional correctness of every word-level
// builder against the behavioral semantics, toggle accounting, and the
// cross-checks that tie the gate level back to the RTL cost model.
#include <gtest/gtest.h>

#include "gates/gate_builders.h"
#include "benchmarks/benchmarks.h"
#include "gates/gate_expand.h"
#include "library/library.h"
#include "power/trace.h"
#include "sched/scheduler.h"
#include "synth/initial.h"
#include "util/rng.h"

namespace hsyn {
namespace {

using gates::FuNetwork;
using gates::GateKind;
using gates::GateNetlist;
using gates::Word;

/// Drive (a, b) and return the 16-bit output of an FU network.
std::int32_t run_fu(FuNetwork& fu, std::int32_t a, std::int32_t b) {
  fu.net.set_word(fu.a, a);
  fu.net.set_word(fu.b, b);
  fu.net.eval();
  return fu.net.read_word(fu.out);
}

class GateFuCorrectness : public ::testing::TestWithParam<Op> {};

TEST_P(GateFuCorrectness, MatchesBehavioralSemantics) {
  const Op op = GetParam();
  FuNetwork fu = gates::build_fu(op);
  Rng rng(7 + static_cast<int>(op));
  for (int k = 0; k < 200; ++k) {
    const std::int32_t a = mask16(rng.range(-32768, 32767));
    std::int32_t b = mask16(rng.range(-32768, 32767));
    const std::int32_t got = run_fu(fu, a, b);
    const std::int32_t want = eval_op(op, a, b);
    ASSERT_EQ(got, want) << op_name(op) << "(" << a << ", " << b << ")";
  }
  // A few corner cases.
  for (const auto& [a, b] : std::vector<std::pair<int, int>>{
           {0, 0}, {-1, -1}, {32767, 1}, {-32768, -1}, {-32768, -32768}}) {
    ASSERT_EQ(run_fu(fu, a, b), eval_op(op, a, b))
        << op_name(op) << "(" << a << ", " << b << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(AllOps, GateFuCorrectness,
                         ::testing::Values(Op::Add, Op::Sub, Op::Mult, Op::Cmp,
                                           Op::And, Op::Or, Op::Xor, Op::Neg,
                                           Op::ShiftL, Op::ShiftR),
                         [](const ::testing::TestParamInfo<Op>& info) {
                           return op_name(info.param);
                         });

TEST(Gates, DffHoldsUntilClock) {
  GateNetlist net;
  const int d = net.add_input("d");
  const int q = net.add(GateKind::Dff, d);
  net.set_input(0, true);
  net.eval();
  EXPECT_FALSE(net.value(q));  // not clocked yet
  net.clock();
  EXPECT_TRUE(net.value(q));
  net.set_input(0, false);
  net.eval();
  EXPECT_TRUE(net.value(q));  // holds
  net.clock();
  EXPECT_FALSE(net.value(q));
}

TEST(Gates, RegisterWordStoresValues) {
  GateNetlist net;
  const Word d = gates::input_word(net, "d");
  const Word q = gates::register_word(net, d, "q");
  net.set_word(d, -1234);
  net.clock();
  EXPECT_EQ(net.read_word(q), -1234);
  net.set_word(d, 999);
  net.eval();
  EXPECT_EQ(net.read_word(q), -1234);  // hold
  net.clock();
  EXPECT_EQ(net.read_word(q), 999);
}

TEST(Gates, MultiplierTogglesFarMoreThanAdder) {
  // The gate-level justification of the RTL library's switched
  // capacitance ratio between mult1 (130) and add1 (9): ~14x. The array
  // multiplier's toggle-weighted capacitance per evaluation should
  // exceed the ripple adder's by an order of magnitude on random data.
  FuNetwork add = gates::build_fu(Op::Add);
  FuNetwork mul = gates::build_fu(Op::Mult);
  Rng rng(42);
  // Warm up the first evaluation (no toggles counted on it).
  run_fu(add, 1, 2);
  run_fu(mul, 1, 2);
  add.net.reset_counters();
  mul.net.reset_counters();
  for (int k = 0; k < 300; ++k) {
    const std::int32_t a = mask16(rng.range(-32768, 32767));
    const std::int32_t b = mask16(rng.range(-32768, 32767));
    run_fu(add, a, b);
    run_fu(mul, a, b);
  }
  const double ratio = mul.net.switched_cap() / add.net.switched_cap();
  EXPECT_GT(ratio, 8.0);
  EXPECT_LT(ratio, 40.0);

  const Library lib = default_library();
  const double lib_ratio = lib.fu(lib.find_fu("mult1")).cap_sw /
                           lib.fu(lib.find_fu("add1")).cap_sw;
  EXPECT_GT(ratio, lib_ratio * 0.5);
  EXPECT_LT(ratio, lib_ratio * 3.0);
}

TEST(Gates, CorrelatedDataTogglesLessThanRandom) {
  // The premise of the trace-driven power model: correlated operand
  // streams switch less capacitance than uncorrelated ones. The effect is
  // strong on adders (carry chains track operand Hamming distance);
  // array multipliers internally decorrelate, which is also why sharing
  // hurts multiplier power most in the RTL model.
  FuNetwork a = gates::build_fu(Op::Add);
  FuNetwork b = gates::build_fu(Op::Add);
  run_fu(a, 0, 0);
  run_fu(b, 0, 0);
  a.net.reset_counters();
  b.net.reset_counters();
  const Trace corr = make_trace(2, 300, 5, 0.02);   // small steps
  const Trace rand = make_trace(2, 300, 5, 2.0);    // full-scale jumps
  for (int k = 0; k < 300; ++k) {
    run_fu(a, corr[static_cast<std::size_t>(k)][0],
           corr[static_cast<std::size_t>(k)][1]);
    run_fu(b, rand[static_cast<std::size_t>(k)][0],
           rand[static_cast<std::size_t>(k)][1]);
  }
  EXPECT_LT(a.net.switched_cap(), b.net.switched_cap() * 0.85);
}

TEST(Gates, AreaOrderingMatchesLibrary) {
  // Gate-level areas should order the ops like the library's area model:
  // a multiplier dwarfs an adder; logic is cheapest.
  const auto add = gates::gate_cost(Op::Add);
  const auto mul = gates::gate_cost(Op::Mult);
  const auto logic = gates::gate_cost(Op::And);
  EXPECT_GT(mul.area, add.area * 5);
  EXPECT_LT(logic.area, add.area);
  EXPECT_GT(mul.depth, add.depth);
  EXPECT_GT(add.gates, 16 * 4);  // full adders
}

TEST(Gates, ExpansionCoversWholeDatapath) {
  const Library lib = default_library();
  Design design;
  design.add_behavior(make_biquad("biquad"));
  design.set_top("biquad");
  SynthContext cx;
  cx.design = &design;
  cx.lib = &lib;
  cx.pt = {5.0, 20.0};
  Datapath dp = initial_solution(design.top(), "biquad", cx);
  ASSERT_TRUE(schedule_datapath(dp, lib, cx.pt, kNoDeadline).ok);

  const gates::ModuleGates m = gates::expand_datapath(dp, lib);
  EXPECT_GT(m.fu_gates, 1000);  // five multipliers dominate
  EXPECT_EQ(m.reg_gates, static_cast<int>(dp.regs.size()) * 16);
  EXPECT_GT(m.ctrl_gates, 0);
  EXPECT_GT(m.total_area(), 0);
  const std::string report = gates::gates_report(m);
  EXPECT_NE(report.find("gates"), std::string::npos);
}

TEST(Gates, SharedDesignHasFewerGatesThanParallel) {
  const Library lib = default_library();
  Design design;
  design.add_behavior(make_paulin_iter("paulin"));
  design.set_top("paulin");
  SynthContext cx;
  cx.design = &design;
  cx.lib = &lib;
  cx.pt = {5.0, 20.0};
  Datapath par = initial_solution(design.top(), "paulin", cx);
  ASSERT_TRUE(schedule_datapath(par, lib, cx.pt, kNoDeadline).ok);

  Datapath shared = par;
  BehaviorImpl& bi = shared.behaviors[0];
  int first_mult = -1;
  for (Invocation& inv : bi.invs) {
    if (bi.dfg->node(inv.nodes[0]).op != Op::Mult) continue;
    if (first_mult < 0) {
      first_mult = inv.unit.idx;
    } else {
      inv.unit.idx = first_mult;
    }
  }
  shared.prune_unused();
  ASSERT_TRUE(schedule_datapath(shared, lib, cx.pt, kNoDeadline).ok);

  const auto g_par = gates::expand_datapath(par, lib);
  const auto g_shared = gates::expand_datapath(shared, lib);
  EXPECT_LT(g_shared.total_gates(), g_par.total_gates());
  EXPECT_GT(g_shared.mux_gates, g_par.mux_gates);  // sharing adds muxes
}

TEST(Gates, HistogramAndDepth) {
  FuNetwork add = gates::build_fu(Op::Add);
  const auto h = add.net.histogram();
  ASSERT_TRUE(h.count(GateKind::Xor));
  EXPECT_EQ(h.at(GateKind::Xor), 32);  // 2 XOR per full adder x 16
  EXPECT_GE(add.net.depth(), 16);      // ripple carry chain
  EXPECT_LE(add.net.depth(), 64);
}

}  // namespace
}  // namespace hsyn
