// Library and trace textual I/O (the paper's remaining textual inputs).
#include <gtest/gtest.h>

#include "library/textio.h"
#include "power/trace_io.h"
#include "synth/synthesizer.h"

#include "benchmarks/benchmarks.h"

namespace hsyn {
namespace {

TEST(LibraryIo, DefaultLibraryRoundTrips) {
  const Library lib = default_library();
  const std::string text = library_to_text(lib);
  const Library parsed = library_from_text(text);
  ASSERT_EQ(parsed.num_fu_types(), lib.num_fu_types());
  for (int i = 0; i < lib.num_fu_types(); ++i) {
    const FuType& a = lib.fu(i);
    const FuType& b = parsed.fu(i);
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.ops, b.ops);
    EXPECT_DOUBLE_EQ(a.area, b.area);
    EXPECT_DOUBLE_EQ(a.delay_ns, b.delay_ns);
    EXPECT_DOUBLE_EQ(a.cap_sw, b.cap_sw);
    EXPECT_EQ(a.chain_depth, b.chain_depth);
    EXPECT_EQ(a.pipelined, b.pipelined);
  }
  EXPECT_DOUBLE_EQ(parsed.reg().area, lib.reg().area);
  EXPECT_DOUBLE_EQ(parsed.costs().clock_cap_per_reg,
                   lib.costs().clock_cap_per_reg);
  // Second round trip is a fixed point.
  EXPECT_EQ(library_to_text(parsed), text);
}

TEST(LibraryIo, ParsesMinimalLibrary) {
  const Library lib = library_from_text(
      "fu adder ops=add,sub area=25 delay=18 cap=7\n"
      "fu booth ops=mult area=120 delay=60 cap=90 pipelined\n"
      "fu chainx ops=add area=55 delay=21 cap=15 chain=2\n"
      "reg r area=9 cap=1.5\n"
      "costs mux_area=5 clock_cap=0.2\n");
  EXPECT_EQ(lib.num_fu_types(), 3);
  EXPECT_TRUE(lib.fu(1).pipelined);
  EXPECT_EQ(lib.fu(2).chain_depth, 2);
  EXPECT_DOUBLE_EQ(lib.costs().mux_area_per_input, 5);
  EXPECT_DOUBLE_EQ(lib.costs().clock_cap_per_reg, 0.2);
  // Omitted cost keys keep defaults.
  EXPECT_DOUBLE_EQ(lib.costs().wire_cap_global,
                   default_library().costs().wire_cap_global);
}

TEST(LibraryIo, RejectsMalformedInput) {
  EXPECT_THROW(library_from_text("bogus\n"), std::logic_error);
  EXPECT_THROW(library_from_text("fu a ops=warp area=1 delay=1 cap=1\n"),
               std::logic_error);
  EXPECT_THROW(library_from_text("fu a ops=add area=x delay=1 cap=1\n"),
               std::logic_error);
  EXPECT_THROW(library_from_text("reg r area=1 cap=1\n"), std::logic_error);
  EXPECT_THROW(
      library_from_text("fu a ops=add area=1 delay=1 cap=1 warp=1\n"),
      std::logic_error);
}

TEST(TraceIo, RoundTrips) {
  const Trace t = make_trace(4, 20, 9);
  const Trace parsed = trace_from_text(trace_to_text(t));
  EXPECT_EQ(parsed, t);
}

TEST(TraceIo, ParsesAndWraps) {
  const Trace t = trace_from_text("1 2 3\n# comment\n70000 -70000 0\n");
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t[1][0], mask16(70000));
  EXPECT_EQ(t[1][1], mask16(-70000));
}

TEST(TraceIo, RejectsRaggedAndEmpty) {
  EXPECT_THROW(trace_from_text("1 2\n3\n"), std::logic_error);
  EXPECT_THROW(trace_from_text("# only comments\n"), std::logic_error);
  EXPECT_THROW(trace_from_text("1 2\n", 3), std::logic_error);
  EXPECT_THROW(trace_from_text("1 two\n"), std::logic_error);
}

TEST(TraceIo, UserTraceDrivesSynthesis) {
  const Library lib = default_library();
  const Benchmark bench = make_benchmark("iir", lib);
  const double ts = 2.0 * min_sample_period_ns(bench.design, lib);
  SynthOptions opts;
  opts.max_passes = 2;
  opts.user_trace = make_trace(bench.design.top().num_inputs(), 10, 777);
  const SynthResult r = synthesize(bench.design, lib, &bench.clib, ts,
                                   Objective::Power, Mode::Hierarchical, opts);
  ASSERT_TRUE(r.ok) << r.fail_reason;

  // A wrong-arity trace is rejected loudly.
  SynthOptions bad = opts;
  bad.user_trace = make_trace(3, 10, 777);
  EXPECT_THROW(synthesize(bench.design, lib, &bench.clib, ts, Objective::Power,
                          Mode::Hierarchical, bad),
               std::logic_error);
}

TEST(LibraryIo, CustomLibrarySynthesizes) {
  const Library lib = library_from_text(
      "fu fadd ops=add,sub area=40 delay=14 cap=12\n"
      "fu sadd ops=add,sub area=18 delay=40 cap=5\n"
      "fu fmul ops=mult area=200 delay=50 cap=150\n"
      "fu smul ops=mult area=80 delay=110 cap=50\n"
      "fu cmp ops=cmp area=12 delay=10 cap=3\n"
      "fu misc ops=shl,shr,and,or,xor,neg area=14 delay=10 cap=3\n"
      "reg r area=8 cap=1.6\n");
  Design design;
  design.add_behavior(make_paulin_iter("paulin"));
  design.set_top("paulin");
  const double ts = 2.0 * min_sample_period_ns(design, lib);
  const SynthResult r = synthesize(design, lib, nullptr, ts, Objective::Area,
                                   Mode::Hierarchical);
  ASSERT_TRUE(r.ok) << r.fail_reason;
  EXPECT_GT(r.area, 0);
}

}  // namespace
}  // namespace hsyn
