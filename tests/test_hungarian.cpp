#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "embed/hungarian.h"
#include "util/rng.h"

namespace hsyn {
namespace {

/// Brute-force optimal assignment cost by permutation enumeration.
double brute_force(const std::vector<std::vector<double>>& cost) {
  const std::size_t n = cost.size();
  std::vector<int> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  double best = 1e30;
  do {
    double c = 0;
    for (std::size_t i = 0; i < n; ++i) c += cost[i][static_cast<std::size_t>(perm[i])];
    best = std::min(best, c);
  } while (std::next_permutation(perm.begin(), perm.end()));
  return best;
}

TEST(Hungarian, EmptyMatrix) {
  const AssignmentResult r = solve_assignment({});
  EXPECT_TRUE(r.row_to_col.empty());
  EXPECT_DOUBLE_EQ(r.cost, 0);
}

TEST(Hungarian, Identity2x2) {
  const AssignmentResult r = solve_assignment({{1, 10}, {10, 1}});
  EXPECT_EQ(r.row_to_col[0], 0);
  EXPECT_EQ(r.row_to_col[1], 1);
  EXPECT_DOUBLE_EQ(r.cost, 2);
}

TEST(Hungarian, CrossAssignment) {
  const AssignmentResult r = solve_assignment({{10, 1}, {1, 10}});
  EXPECT_EQ(r.row_to_col[0], 1);
  EXPECT_EQ(r.row_to_col[1], 0);
  EXPECT_DOUBLE_EQ(r.cost, 2);
}

TEST(Hungarian, AssignmentIsPermutation) {
  Rng rng(5);
  std::vector<std::vector<double>> cost(7, std::vector<double>(7));
  for (auto& row : cost) {
    for (double& c : row) c = rng.uniform() * 100;
  }
  const AssignmentResult r = solve_assignment(cost);
  std::vector<bool> used(7, false);
  for (const int c : r.row_to_col) {
    ASSERT_GE(c, 0);
    ASSERT_LT(c, 7);
    EXPECT_FALSE(used[static_cast<std::size_t>(c)]);
    used[static_cast<std::size_t>(c)] = true;
  }
}

TEST(Hungarian, RejectsNonSquare) {
  EXPECT_THROW(solve_assignment({{1, 2}}), std::logic_error);
}

TEST(Hungarian, InfeasibleCellsAvoidedWhenPossible) {
  const AssignmentResult r = solve_assignment(
      {{kInfeasible, 1, 2}, {3, kInfeasible, 1}, {1, 2, kInfeasible}});
  EXPECT_LT(r.cost, kInfeasible / 2);
}

class HungarianVsBruteForce : public ::testing::TestWithParam<int> {};

/// Property: for random matrices up to 7x7 the Hungarian result equals
/// the brute-force optimum.
TEST_P(HungarianVsBruteForce, MatchesOptimal) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 977 + 1);
  const std::size_t n = 2 + rng.below(6);
  std::vector<std::vector<double>> cost(n, std::vector<double>(n));
  for (auto& row : cost) {
    for (double& c : row) c = static_cast<double>(rng.below(1000));
  }
  const AssignmentResult r = solve_assignment(cost);
  EXPECT_NEAR(r.cost, brute_force(cost), 1e-9) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(RandomMatrices, HungarianVsBruteForce,
                         ::testing::Range(0, 25));

}  // namespace
}  // namespace hsyn
