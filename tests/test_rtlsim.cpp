#include <gtest/gtest.h>

#include "benchmarks/benchmarks.h"
#include "power/rtlsim.h"
#include "sched/scheduler.h"
#include "synth/initial.h"

namespace hsyn {
namespace {

const OpPoint kRef{5.0, 20.0};

class RtlSimOnBenchmark : public ::testing::TestWithParam<std::string> {};

TEST_P(RtlSimOnBenchmark, InitialSolutionMatchesBehavior) {
  const Library lib = default_library();
  const Benchmark bench = make_benchmark(GetParam(), lib);
  SynthContext cx;
  cx.design = &bench.design;
  cx.lib = &lib;
  cx.clib = &bench.clib;
  cx.pt = kRef;
  Datapath dp = initial_solution(bench.design.top(), GetParam(), cx);
  ASSERT_TRUE(schedule_datapath(dp, lib, kRef, kNoDeadline).ok);
  const Trace trace = make_trace(bench.design.top().num_inputs(), 24, 5);
  const RtlSimResult r = simulate_rtl(dp, 0, trace, lib, kRef);
  EXPECT_TRUE(r.ok) << (r.violations.empty() ? "" : r.violations[0]);
  EXPECT_EQ(r.outputs.size(), trace.size());
  EXPECT_GT(r.energy.total(), 0);
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, RtlSimOnBenchmark,
                         ::testing::Values("avenhaus_cascade", "lat", "dct",
                                           "iir", "hier_paulin", "test1",
                                           "fir16", "dct2d"));

TEST(RtlSim, DetectsRegisterHazard) {
  // Force two long-lived values into one register *without* rescheduling:
  // the stale schedule now has overlapping lifetimes, which the simulator
  // must flag as a hazard or value mismatch.
  const Library lib = default_library();
  Design design;
  design.add_behavior(make_paulin_iter("paulin"));
  design.set_top("paulin");
  design.validate();
  SynthContext cx;
  cx.design = &design;
  cx.lib = &lib;
  cx.pt = kRef;
  Datapath dp = initial_solution(design.top(), "paulin", cx);
  ASSERT_TRUE(schedule_datapath(dp, lib, kRef, kNoDeadline).ok);

  BehaviorImpl& bi = dp.behaviors[0];
  // Two primary-input edges (live for the whole sample) share a register.
  const int e0 = bi.dfg->primary_input_edge(0);
  const int e1 = bi.dfg->primary_input_edge(1);
  bi.edge_reg[static_cast<std::size_t>(e1)] =
      bi.edge_reg[static_cast<std::size_t>(e0)];
  // Deliberately do NOT reschedule.
  const Trace trace = make_trace(design.top().num_inputs(), 4, 7);
  const RtlSimResult r = simulate_rtl(dp, 0, trace, lib, kRef);
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.violations.empty());
}

TEST(RtlSim, EnergyTracksEstimator) {
  // The simulator and the fast estimator implement the same switched-
  // capacitance model at transfer granularity; totals should agree
  // closely on a clean design.
  const Library lib = default_library();
  Design design;
  design.add_behavior(make_biquad("biquad"));
  design.set_top("biquad");
  design.validate();
  SynthContext cx;
  cx.design = &design;
  cx.lib = &lib;
  cx.pt = kRef;
  Datapath dp = initial_solution(design.top(), "biquad", cx);
  ASSERT_TRUE(schedule_datapath(dp, lib, kRef, kNoDeadline).ok);
  const Trace trace = make_trace(8, 48, 21);
  const RtlSimResult r = simulate_rtl(dp, 0, trace, lib, kRef);
  ASSERT_TRUE(r.ok);
  const EnergyBreakdown est = energy_of(dp, 0, trace, lib, kRef);
  EXPECT_NEAR(r.energy.total(), est.total(), est.total() * 0.15);
}

TEST(RtlSim, ChainedUnitsExecuteCombinationally) {
  const Library lib = default_library();
  const Benchmark bench = make_benchmark("test1", lib);
  const ComplexLibrary::Template* t = bench.clib.find("addtree_seq_chain");
  ASSERT_NE(t, nullptr);
  Datapath dp = ComplexLibrary::instantiate(*t, "addtree_seq");
  ASSERT_TRUE(schedule_datapath(dp, lib, kRef, kNoDeadline).ok);
  const Trace trace = make_trace(4, 16, 9);
  const RtlSimResult r = simulate_rtl(dp, 0, trace, lib, kRef);
  EXPECT_TRUE(r.ok) << (r.violations.empty() ? "" : r.violations[0]);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const auto expect = eval_op(
        Op::Add,
        eval_op(Op::Add, eval_op(Op::Add, trace[i][0], trace[i][1]),
                trace[i][2]),
        trace[i][3]);
    EXPECT_EQ(r.outputs[i][0], expect);
  }
}

TEST(RtlSim, EmptyTraceOk) {
  const Library lib = default_library();
  Design design;
  design.add_behavior(make_butterfly("bf"));
  design.set_top("bf");
  SynthContext cx;
  cx.design = &design;
  cx.lib = &lib;
  cx.pt = kRef;
  Datapath dp = initial_solution(design.top(), "bf", cx);
  ASSERT_TRUE(schedule_datapath(dp, lib, kRef, kNoDeadline).ok);
  const RtlSimResult r = simulate_rtl(dp, 0, {}, lib, kRef);
  EXPECT_TRUE(r.ok);
}

}  // namespace
}  // namespace hsyn
