// Negative paths and structural edge cases across subsystems.
#include <gtest/gtest.h>

#include "benchmarks/benchmarks.h"
#include "embed/embedder.h"
#include "power/rtlsim.h"
#include "rtl/cost.h"
#include "sched/scheduler.h"
#include "synth/initial.h"
#include "synth/moves.h"

namespace hsyn {
namespace {

const OpPoint kRef{5.0, 20.0};

TEST(EdgeCases, ChainIntermediateEscapeIsRejected) {
  // A chain whose intermediate value also feeds an external consumer
  // cannot be fused (the value is never latched).
  const Library lib = default_library();
  Dfg d("bad_chain", 3, 2);
  const int a1 = d.add_node(Op::Add);
  const int a2 = d.add_node(Op::Add);
  d.connect({kPrimaryIn, 0}, {{a1, 0}});
  d.connect({kPrimaryIn, 1}, {{a1, 1}});
  d.connect({kPrimaryIn, 2}, {{a2, 1}});
  d.connect({a1, 0}, {{a2, 0}, {kPrimaryOut, 1}});  // escapes!
  d.connect({a2, 0}, {{kPrimaryOut, 0}});
  d.validate();
  Design design;
  design.add_behavior(std::move(d));
  design.set_top("bad_chain");
  SynthContext cx;
  cx.design = &design;
  cx.lib = &lib;
  cx.pt = kRef;
  Datapath dp = initial_solution(design.top(), "bad_chain", cx);

  // Hand-build an illegal chained invocation and expect validate to balk.
  BehaviorImpl& bi = dp.behaviors[0];
  const int chained_type = lib.find_fu("chained_add2");
  dp.fus.push_back({chained_type, ""});
  const int new_unit = static_cast<int>(dp.fus.size()) - 1;
  bi.invs[0].nodes = {0, 1};
  bi.invs[0].unit = {UnitRef::Kind::Fu, new_unit};
  bi.node_inv[1] = 0;
  bi.invs.erase(bi.invs.begin() + 1);
  EXPECT_THROW(dp.validate(lib), std::logic_error);

  // The sharing move generator never proposes this fusion.
  Datapath fresh = initial_solution(design.top(), "bad_chain", cx);
  const SchedResult sr = schedule_datapath(fresh, lib, kRef, kNoDeadline);
  ASSERT_TRUE(sr.ok);
  cx.deadline = sr.makespan + 4;
  cx.obj = Objective::Area;
  cx.trace = make_trace(3, 8, 3);
  Datapath cur = fresh;
  for (int i = 0; i < 5; ++i) {
    const Move m = best_sharing_move(cur, cx);
    if (!m.valid) break;
    EXPECT_NE(m.kind, "C:chain-fuse");
    cur = m.result;
  }
}

TEST(EdgeCases, EmbeddingPropagatesSealedFlag) {
  const Library lib = default_library();
  const Benchmark bench = make_benchmark("test1", lib);
  SynthContext cx;
  cx.design = &bench.design;
  cx.lib = &lib;
  cx.clib = &bench.clib;
  cx.pt = kRef;
  cx.obj = Objective::Area;
  cx.trace = make_trace(8, 8, 3);
  Datapath dp = initial_solution(bench.design.top(), "test1", cx);
  const SchedResult sr = schedule_datapath(dp, lib, kRef, kNoDeadline);
  cx.deadline = sr.makespan * 4;
  schedule_datapath(dp, lib, kRef, cx.deadline);

  // Seal every child; any embedding result must stay sealed so move B
  // never rewrites a module whose internals are off limits.
  for (ChildUnit& c : dp.children) c.sealed = true;
  Datapath cur = dp;
  for (int i = 0; i < 8; ++i) {
    const Move m = best_sharing_move(cur, cx);
    if (!m.valid) break;
    cur = m.result;
  }
  for (const ChildUnit& c : cur.children) {
    EXPECT_TRUE(c.sealed);
  }
}

TEST(EdgeCases, SealedChildIsNeverResynthesized) {
  const Library lib = default_library();
  const Benchmark bench = make_benchmark("iir", lib);
  SynthContext cx;
  cx.design = &bench.design;
  cx.lib = &lib;
  cx.clib = nullptr;  // no templates: replace_child has nothing either
  cx.pt = kRef;
  cx.obj = Objective::Power;
  cx.trace = make_trace(bench.design.top().num_inputs(), 12, 3);
  Datapath dp = initial_solution(bench.design.top(), "iir", cx);
  const SchedResult sr = schedule_datapath(dp, lib, kRef, kNoDeadline);
  cx.deadline = sr.makespan * 2;
  schedule_datapath(dp, lib, kRef, cx.deadline);
  for (ChildUnit& c : dp.children) c.sealed = true;

  const Move m = best_replace_move(dp, cx);
  // With all children sealed and no library templates or equivalents,
  // no B move may appear.
  if (m.valid) {
    EXPECT_NE(m.kind, "B:resynth");
  }
}

TEST(EdgeCases, EmptyBehaviorDfgPassesThrough) {
  // A behavior that only routes inputs to outputs (no operations).
  const Library lib = default_library();
  Dfg d("wire2", 2, 2);
  d.connect({kPrimaryIn, 0}, {{kPrimaryOut, 0}});
  d.connect({kPrimaryIn, 1}, {{kPrimaryOut, 1}});
  d.validate();
  Design design;
  design.add_behavior(std::move(d));
  design.set_top("wire2");
  SynthContext cx;
  cx.design = &design;
  cx.lib = &lib;
  cx.pt = kRef;
  Datapath dp = initial_solution(design.top(), "wire2", cx);
  const SchedResult r = schedule_datapath(dp, lib, kRef, kNoDeadline);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.makespan, 0);
  EXPECT_TRUE(dp.fus.empty());
  EXPECT_EQ(dp.regs.size(), 2u);
}

TEST(EdgeCases, SingleNodeDesign) {
  const Library lib = default_library();
  Dfg d("one", 2, 1);
  const int m = d.add_node(Op::Mult);
  d.connect({kPrimaryIn, 0}, {{m, 0}});
  d.connect({kPrimaryIn, 1}, {{m, 1}});
  d.connect({m, 0}, {{kPrimaryOut, 0}});
  d.validate();
  Design design;
  design.add_behavior(std::move(d));
  design.set_top("one");
  SynthContext cx;
  cx.design = &design;
  cx.lib = &lib;
  cx.pt = kRef;
  Datapath dp = initial_solution(design.top(), "one", cx);
  const SchedResult r = schedule_datapath(dp, lib, kRef, kNoDeadline);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.makespan, 3);  // one mult1
  const AreaBreakdown a = area_of(dp, lib);
  EXPECT_GT(a.total(), lib.fu(lib.find_fu("mult1")).area);
}

TEST(EdgeCases, SameEdgeFeedsBothOperandPorts) {
  // x * x: one edge consumed twice by the same invocation.
  const Library lib = default_library();
  Dfg d("square", 1, 1);
  const int m = d.add_node(Op::Mult);
  d.connect({kPrimaryIn, 0}, {{m, 0}, {m, 1}});
  d.connect({m, 0}, {{kPrimaryOut, 0}});
  d.validate();
  Design design;
  design.add_behavior(std::move(d));
  design.set_top("square");
  SynthContext cx;
  cx.design = &design;
  cx.lib = &lib;
  cx.pt = kRef;
  Datapath dp = initial_solution(design.top(), "square", cx);
  ASSERT_TRUE(schedule_datapath(dp, lib, kRef, kNoDeadline).ok);
  const Trace trace = make_trace(1, 8, 3);
  const RtlSimResult sim = simulate_rtl(dp, 0, trace, lib, kRef);
  ASSERT_TRUE(sim.ok) << (sim.violations.empty() ? "" : sim.violations[0]);
  for (std::size_t t = 0; t < trace.size(); ++t) {
    EXPECT_EQ(sim.outputs[t][0], eval_op(Op::Mult, trace[t][0], trace[t][0]));
  }
}

TEST(EdgeCases, AlapStartsEmptyOnBrokenOrdering) {
  // Register orderings that conflict with dataflow yield no ALAP.
  const Library lib = default_library();
  Dfg d("serial", 2, 1);
  const int a1 = d.add_node(Op::Add);
  const int a2 = d.add_node(Op::Add);
  d.connect({kPrimaryIn, 0}, {{a1, 0}});
  d.connect({kPrimaryIn, 1}, {{a1, 1}, {a2, 1}});
  const int mid = d.connect({a1, 0}, {{a2, 0}});
  d.connect({a2, 0}, {{kPrimaryOut, 0}});
  d.validate();
  Design design;
  design.add_behavior(std::move(d));
  design.set_top("serial");
  SynthContext cx;
  cx.design = &design;
  cx.lib = &lib;
  cx.pt = kRef;
  Datapath dp = initial_solution(design.top(), "serial", cx);
  ASSERT_TRUE(schedule_datapath(dp, lib, kRef, kNoDeadline).ok);
  // Force a2's output into the register holding its own input value:
  // the WAR ordering (write of out after read of mid) is satisfiable, so
  // this *is* schedulable; sanity-check instead that alap_starts works.
  BehaviorImpl& bi = dp.behaviors[0];
  const int out_edge = dp.behaviors[0].dfg->output_edge(a2, 0);
  bi.edge_reg[static_cast<std::size_t>(out_edge)] =
      bi.edge_reg[static_cast<std::size_t>(mid)];
  dp.prune_unused();
  if (schedule_datapath(dp, lib, kRef, kNoDeadline).ok) {
    const auto alap =
        alap_starts(dp, 0, lib, kRef, dp.behaviors[0].makespan);
    EXPECT_EQ(alap.size(), dp.behaviors[0].invs.size());
  }
}

}  // namespace
}  // namespace hsyn
