// Tests of the live telemetry layer (src/obs/telemetry.h): the
// background sampler must never change synthesis results at any thread
// count, per-job search counters must advance during a run, the JSONL
// export must be well-formed, and the Prometheus exposition must carry
// the registry's instruments.
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "eval/engine.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "runtime/thread_pool.h"
#include "serve/jobs.h"
#include "util/json.h"

namespace hsyn::obs {
namespace {

/// The report minus its only run-dependent line (wall-clock synthesis
/// time) -- everything else must be bit-identical across runs.
std::string strip_timing(const std::string& report) {
  std::istringstream in(report);
  std::string out, line;
  while (std::getline(in, line)) {
    if (line.find("synthesis time") == std::string::npos) {
      out += line;
      out += '\n';
    }
  }
  return out;
}

serve::JobSpec bench_spec(const std::string& name, std::uint64_t seed) {
  serve::JobSpec spec;
  spec.benchmark = name;
  spec.seed = seed;
  spec.verify = false;
  return spec;
}

// The tentpole guarantee: a run with the sampler ticking aggressively
// is bit-identical (timing stripped) to a run without it, serial and
// parallel alike -- sampling only reads.
TEST(Telemetry, SamplerNeverChangesResults) {
  Telemetry& tel = Telemetry::instance();
  tel.stop();
  for (const int threads : {1, 2, 8}) {
    runtime::set_threads(threads);
    const serve::JobOutcome base =
        serve::run_job(bench_spec("test1", 42), serve::JobHooks{});
    ASSERT_TRUE(base.ok) << base.error;

    tel.clear();
    tel.start(/*interval_ms=*/5);
    const serve::JobOutcome sampled =
        serve::run_job(bench_spec("test1", 42), serve::JobHooks{});
    tel.stop();
    ASSERT_TRUE(sampled.ok) << sampled.error;
    EXPECT_EQ(strip_timing(sampled.report), strip_timing(base.report))
        << "telemetry changed the result at " << threads << " thread(s)";
  }
  runtime::set_threads(0);
}

TEST(Telemetry, JobCountersAdvanceDuringARun) {
  reset_job_states();
  // Cold eval caches so the run actually replays (a warm cache would
  // satisfy every evaluation by lookup and leave replay_samples at 0).
  eval::EvalEngine::instance().clear();
  const serve::JobOutcome out =
      serve::run_job(bench_spec("test1", 42), serve::JobHooks{});
  ASSERT_TRUE(out.ok) << out.error;
  // A solo run publishes under job 0.
  const JobSearchState& js = job_state(0);
  EXPECT_GT(js.passes.load(), 0u);
  EXPECT_GT(js.cache_hits.load() + js.cache_misses.load(), 0u);
  EXPECT_GT(js.best_cost.load(), 0.0);
  EXPECT_GT(js.vdd.load(), 0.0);
  EXPECT_GT(js.replay_samples.load(), 0u);
}

TEST(Telemetry, RingRecordsAndJsonlIsWellFormed) {
  Telemetry& tel = Telemetry::instance();
  tel.stop();
  tel.clear();
  tel.start(/*interval_ms=*/5);
  const serve::JobOutcome out =
      serve::run_job(bench_spec("test1", 7), serve::JobHooks{});
  tel.stop();
  ASSERT_TRUE(out.ok) << out.error;
  tel.sample_now(/*record=*/true);  // >= 1 sample even on a fast machine

  const std::string path =
      testing::TempDir() + "telemetry_" + std::to_string(::getpid()) +
      ".jsonl";
  ASSERT_TRUE(tel.write_jsonl(path));
  std::ifstream in(path);
  ASSERT_TRUE(in);
  std::string line;
  std::size_t lines = 0;
  std::uint64_t prev_seq = 0;
  while (std::getline(in, line)) {
    ASSERT_TRUE(json_valid(line)) << line;
    JsonValue v;
    std::string err;
    ASSERT_TRUE(json_parse(line, &v, &err)) << err;
    EXPECT_EQ(v.str_or("type", ""), "telemetry");
    const std::uint64_t seq =
        static_cast<std::uint64_t>(v.int_or("seq", 0));
    if (lines > 0) {
      EXPECT_GT(seq, prev_seq);
    }
    prev_seq = seq;
    EXPECT_TRUE(v.get("jobs") != nullptr && v.get("jobs")->is_array());
    ++lines;
  }
  EXPECT_GT(lines, 0u);
  std::remove(path.c_str());
}

TEST(Telemetry, SampleNowReportsKnownJobs) {
  job_state(0);  // ensure the solo slot exists
  const TelemetrySample s = Telemetry::instance().sample_now();
  bool found = false;
  for (const JobSample& j : s.jobs) found = found || j.job == 0;
  EXPECT_TRUE(found);
}

TEST(Telemetry, ListenersFirePerRecordedSample) {
  Telemetry& tel = Telemetry::instance();
  tel.stop();
  int fired = 0;
  const std::uint64_t id =
      tel.add_listener([&](const TelemetrySample&) { ++fired; });
  tel.sample_now(/*record=*/true);
  EXPECT_EQ(fired, 1);
  tel.sample_now(/*record=*/false);  // unrecorded samples do not notify
  EXPECT_EQ(fired, 1);
  tel.remove_listener(id);
  tel.sample_now(/*record=*/true);
  EXPECT_EQ(fired, 1);
}

TEST(Telemetry, PrometheusTextExposesRegistry) {
  Registry& reg = Registry::instance();
  reg.counter("test.prom_counter").add(3);
  reg.gauge("test.prom_gauge").set(2.5);
  reg.histogram("test.prom_hist").observe(5);
  reg.register_source("prom-test", [] {
    return std::map<std::string, std::uint64_t>{{"polls", 1}};
  });

  const std::string text = prometheus_text();
  EXPECT_NE(text.find("# TYPE hsyn_test_prom_counter counter"),
            std::string::npos);
  EXPECT_NE(text.find("hsyn_test_prom_gauge 2.5"), std::string::npos);
  // observe(5) lands in the [4,8) bucket: cumulative le bound 7.
  EXPECT_NE(text.find("hsyn_test_prom_hist_bucket{le=\"7\"}"),
            std::string::npos);
  EXPECT_NE(text.find("hsyn_test_prom_hist_bucket{le=\"+Inf\"} "),
            std::string::npos);
  EXPECT_NE(text.find("hsyn_test_prom_hist_sum 5"), std::string::npos);
  EXPECT_NE(text.find("hsyn_test_prom_hist_count 1"), std::string::npos);
  // Polled sources (eval caches et al.) export under hsyn_src_.
  EXPECT_NE(text.find("hsyn_src_"), std::string::npos);
}

TEST(Telemetry, UptimeIsMonotonic) {
  const std::uint64_t a = process_uptime_ms();
  const std::uint64_t b = process_uptime_ms();
  EXPECT_LE(a, b);
}

}  // namespace
}  // namespace hsyn::obs
