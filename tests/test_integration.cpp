// End-to-end integration: full synthesis runs on the paper's benchmark
// suite, checked for feasibility, functional correctness and the paper's
// qualitative claims (power-opt beats area-opt on power; hierarchical
// synthesis explores fewer candidates than flattened).
#include <gtest/gtest.h>

#include "benchmarks/benchmarks.h"
#include "power/rtlsim.h"
#include "synth/synthesizer.h"

namespace hsyn {
namespace {

SynthOptions quick_opts() {
  SynthOptions o;
  o.max_passes = 3;
  o.max_moves_per_pass = 8;
  o.max_candidates = 12;
  o.trace_samples = 16;
  o.max_clocks = 3;
  return o;
}

struct Case {
  std::string name;
  Objective obj;
  Mode mode;
};

class FullSynthesis : public ::testing::TestWithParam<Case> {};

TEST_P(FullSynthesis, SucceedsAndVerifies) {
  const Case c = GetParam();
  const Library lib = default_library();
  const Benchmark bench = make_benchmark(c.name, lib);
  const double ts = 2.2 * min_sample_period_ns(bench.design, lib);
  const SynthResult r = synthesize(bench.design, lib, &bench.clib, ts, c.obj,
                                   c.mode, quick_opts());
  ASSERT_TRUE(r.ok) << r.fail_reason;
  EXPECT_LE(r.makespan, r.deadline_cycles);
  EXPECT_GT(r.area, 0);
  EXPECT_GT(r.power, 0);
  EXPECT_NO_THROW(r.dp.validate(lib));

  const Trace trace = make_trace(
      c.mode == Mode::Flattened ? r.dp.behaviors[0].dfg->num_inputs()
                                : bench.design.top().num_inputs(),
      12, 17);
  const RtlSimResult sim = simulate_rtl(r.dp, 0, trace, lib, r.pt);
  EXPECT_TRUE(sim.ok) << (sim.violations.empty() ? "" : sim.violations[0]);
}

std::vector<Case> all_cases() {
  std::vector<Case> cases;
  for (const char* n : {"iir", "lat", "test1"}) {
    for (const Objective obj : {Objective::Area, Objective::Power}) {
      for (const Mode mode : {Mode::Hierarchical, Mode::Flattened}) {
        cases.push_back({n, obj, mode});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FullSynthesis, ::testing::ValuesIn(all_cases()),
    [](const ::testing::TestParamInfo<Case>& info) {
      return info.param.name + "_" + objective_name(info.param.obj) + "_" +
             mode_name(info.param.mode);
    });

TEST(Integration, PowerOptBeatsAreaOptOnPowerAcrossSuite) {
  const Library lib = default_library();
  int wins = 0, total = 0;
  for (const char* name : {"iir", "test1"}) {
    const Benchmark bench = make_benchmark(name, lib);
    const double ts = 2.2 * min_sample_period_ns(bench.design, lib);
    const SynthResult a = synthesize(bench.design, lib, &bench.clib, ts,
                                     Objective::Area, Mode::Hierarchical,
                                     quick_opts());
    const SynthResult p = synthesize(bench.design, lib, &bench.clib, ts,
                                     Objective::Power, Mode::Hierarchical,
                                     quick_opts());
    ASSERT_TRUE(a.ok && p.ok) << name;
    ++total;
    wins += p.power < a.power ? 1 : 0;
  }
  EXPECT_EQ(wins, total);
}

TEST(Integration, HierarchicalFasterThanFlattened) {
  // The paper's headline efficiency claim (Table 4 reports 2.6-3.3x) at
  // the engine's default per-pass budgets, which scale with the number
  // of movable objects. Wall-clock comparisons are noisy in CI, so only
  // a weak margin is required.
  const Library lib = default_library();
  const Benchmark bench = make_benchmark("avenhaus_cascade", lib);
  const double ts = 2.2 * min_sample_period_ns(bench.design, lib);
  const SynthOptions opts;  // defaults
  const SynthResult hier = synthesize(bench.design, lib, &bench.clib, ts,
                                      Objective::Area, Mode::Hierarchical, opts);
  const SynthResult flat = synthesize(bench.design, lib, &bench.clib, ts,
                                      Objective::Area, Mode::Flattened, opts);
  ASSERT_TRUE(hier.ok && flat.ok);
  EXPECT_LT(hier.synth_seconds, flat.synth_seconds);
}

TEST(Integration, HierAreaWithinRangeOfFlat) {
  const Library lib = default_library();
  const Benchmark bench = make_benchmark("iir", lib);
  const double ts = 2.2 * min_sample_period_ns(bench.design, lib);
  const SynthResult hier = synthesize(bench.design, lib, &bench.clib, ts,
                                      Objective::Area, Mode::Hierarchical,
                                      quick_opts());
  const SynthResult flat = synthesize(bench.design, lib, &bench.clib, ts,
                                      Objective::Area, Mode::Flattened,
                                      quick_opts());
  ASSERT_TRUE(hier.ok && flat.ok);
  // Paper Table 3: hierarchical area stays within ~1.5x of flattened.
  EXPECT_LT(hier.area, flat.area * 1.6);
}

}  // namespace
}  // namespace hsyn
