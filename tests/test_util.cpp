#include <gtest/gtest.h>

#include <set>

#include "util/fmt.h"
#include "util/log.h"
#include "util/rng.h"
#include "util/table.h"

namespace hsyn {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next() == b.next() ? 1 : 0;
  EXPECT_LT(same, 4);
}

TEST(Rng, ZeroSeedIsUsable) {
  Rng r(0);
  EXPECT_NE(r.next(), 0u);
}

TEST(Rng, BelowStaysInBound) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, RangeIsInclusive) {
  Rng r(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(11);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, GaussianRoughlyCentered) {
  Rng r(13);
  double sum = 0;
  for (int i = 0; i < 4000; ++i) sum += r.gaussian();
  EXPECT_NEAR(sum / 4000, 0.0, 0.1);
}

TEST(Fmt, StrfFormats) {
  EXPECT_EQ(strf("a%db%s", 7, "x"), "a7bx");
  EXPECT_EQ(strf("%.2f", 1.239), "1.24");
  EXPECT_EQ(strf("empty"), "empty");
}

TEST(Fmt, FixedPrecision) {
  EXPECT_EQ(fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fixed(2.0, 0), "2");
}

TEST(Fmt, CheckThrowsWithMessage) {
  EXPECT_NO_THROW(check(true, "fine"));
  try {
    check(false, "boom");
    FAIL() << "expected throw";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("boom"), std::string::npos);
  }
}

TEST(Table, RendersAlignedRows) {
  TextTable t;
  t.row({"name", "value"});
  t.rule();
  t.row({"alpha", "1.5"});
  t.row({"b", "20"});
  const std::string s = t.render();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("20"), std::string::npos);
  // Numeric cells right-aligned: "1.5" and "20" end at the same column.
  const auto l1 = s.find("alpha");
  EXPECT_NE(l1, std::string::npos);
}

TEST(Table, HandlesRaggedRows) {
  TextTable t;
  t.row({"a"});
  t.row({"b", "c", "d"});
  EXPECT_NO_THROW(t.render());
}

TEST(Log, LevelFiltering) {
  const LogLevel old = log_level();
  set_log_level(LogLevel::Error);
  EXPECT_EQ(log_level(), LogLevel::Error);
  log_debug("not shown");
  set_log_level(old);
}

}  // namespace
}  // namespace hsyn
