#include <gtest/gtest.h>

#include "benchmarks/benchmarks.h"
#include "dfg/textio.h"

namespace hsyn {
namespace {

TEST(TextIo, RoundTripsTest1Design) {
  const Library lib = default_library();
  const Benchmark bench = make_benchmark("test1", lib);
  const std::string text = design_to_text(bench.design);
  const Design parsed = design_from_text(text);
  EXPECT_EQ(parsed.top_name(), "test1");
  EXPECT_EQ(parsed.behavior_names().size(), bench.design.behavior_names().size());
  for (const std::string& name : bench.design.behavior_names()) {
    ASSERT_TRUE(parsed.has_behavior(name));
    const Dfg& a = bench.design.behavior(name);
    const Dfg& b = parsed.behavior(name);
    EXPECT_EQ(a.nodes().size(), b.nodes().size());
    EXPECT_EQ(a.edges().size(), b.edges().size());
    EXPECT_EQ(a.num_inputs(), b.num_inputs());
    EXPECT_EQ(a.num_outputs(), b.num_outputs());
  }
  // Equivalences preserved.
  EXPECT_EQ(parsed.equivalents("b3mul").size(), 2u);
  EXPECT_EQ(parsed.equivalents("addtree").size(), 2u);
  // Round-trip of the round-trip is identical text.
  EXPECT_EQ(design_to_text(parsed), text);
}

TEST(TextIo, ParsesMinimalDesign) {
  const std::string text = R"(
# comment
dfg tiny inputs 2 outputs 1
  node 0 add label=plus
  edge in:0 -> 0.0
  edge in:1 -> 0.1
  edge 0.0 -> out:0
end
top tiny
)";
  const Design d = design_from_text(text);
  EXPECT_EQ(d.top().nodes().size(), 1u);
  EXPECT_EQ(d.top().node(0).label, "plus");
}

TEST(TextIo, RejectsUnknownKeyword) {
  EXPECT_THROW(design_from_text("bogus line\n"), std::logic_error);
}

TEST(TextIo, RejectsUnknownOp) {
  const std::string text =
      "dfg t inputs 1 outputs 1\n node 0 frobnicate\n edge in:0 -> 0.0\n"
      " edge 0.0 -> out:0\nend\ntop t\n";
  EXPECT_THROW(design_from_text(text), std::logic_error);
}

TEST(TextIo, RejectsUnterminatedBlock) {
  EXPECT_THROW(design_from_text("dfg t inputs 1 outputs 0\n"), std::logic_error);
}

TEST(TextIo, RejectsOutOfOrderNodeIds) {
  const std::string text =
      "dfg t inputs 2 outputs 1\n node 1 add\n edge in:0 -> 1.0\n"
      " edge in:1 -> 1.1\n edge 1.0 -> out:0\nend\ntop t\n";
  EXPECT_THROW(design_from_text(text), std::logic_error);
}

TEST(TextIo, HierNodesRoundTrip) {
  const Library lib = default_library();
  const Benchmark bench = make_benchmark("iir", lib);
  const Design parsed = design_from_text(design_to_text(bench.design));
  const Dfg& top = parsed.top();
  int hier_count = 0;
  for (const Node& n : top.nodes()) hier_count += n.is_hier() ? 1 : 0;
  EXPECT_EQ(hier_count, 3);  // three biquads
}

}  // namespace
}  // namespace hsyn
