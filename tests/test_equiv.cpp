// Rewrite validator (check/equiv.h): positive equivalences through each
// decision stage, and a mutation suite -- one injected semantic
// miscompile per operation family -- that the validator must catch
// without exception (the acceptance bar of the --verify-rewrites gate).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "check/equiv.h"
#include "dfg/dfg.h"
#include "power/trace.h"
#include "random_dfg.h"

namespace hsyn {
namespace {

using lint::EquivResult;
using lint::verify_equivalent;

/// Reference graph exercising every binary op family plus Neg:
///   s  = a - b        (Sub)
///   l  = a << (b&15)  (ShiftL)
///   r  = a >> (b&15)  (ShiftR)
///   c  = a < b        (Cmp)
///   m  = s * c        (Mult)
///   n  = -l           (Neg)
///   x  = (a & b) ^ (a | b)
///   outs: s+m, n, r, x
struct OpSoup {
  Dfg d{"soup", 2, 4};
  int sub, shl, shr, cmp, mult, neg, band, bor, bxor, add;

  OpSoup() {
    sub = d.add_node(Op::Sub);
    shl = d.add_node(Op::ShiftL);
    shr = d.add_node(Op::ShiftR);
    cmp = d.add_node(Op::Cmp);
    mult = d.add_node(Op::Mult);
    neg = d.add_node(Op::Neg);
    band = d.add_node(Op::And);
    bor = d.add_node(Op::Or);
    bxor = d.add_node(Op::Xor);
    add = d.add_node(Op::Add);
    d.connect({kPrimaryIn, 0},
              {{sub, 0}, {shl, 0}, {shr, 0}, {cmp, 0}, {band, 0}, {bor, 0}});
    d.connect({kPrimaryIn, 1},
              {{sub, 1}, {shl, 1}, {shr, 1}, {cmp, 1}, {band, 1}, {bor, 1}});
    d.connect({sub, 0}, {{mult, 0}, {add, 0}});
    d.connect({cmp, 0}, {{mult, 1}});
    d.connect({mult, 0}, {{add, 1}});
    d.connect({shl, 0}, {{neg, 0}});
    d.connect({band, 0}, {{bxor, 0}});
    d.connect({bor, 0}, {{bxor, 1}});
    d.connect({add, 0}, {{kPrimaryOut, 0}});
    d.connect({neg, 0}, {{kPrimaryOut, 1}});
    d.connect({shr, 0}, {{kPrimaryOut, 2}});
    d.connect({bxor, 0}, {{kPrimaryOut, 3}});
    d.validate();
  }
};

Trace stimulus() { return make_trace(2, 48, 0xC0FFEE); }

TEST(Equiv, IdenticalGraphsMatchByCanonicalHash) {
  OpSoup a, b;
  const EquivResult r = verify_equivalent(a.d, b.d, stimulus());
  EXPECT_TRUE(r.equivalent);
  EXPECT_EQ(r.method, "canonical-hash");
}

TEST(Equiv, NodeOrderIsIrrelevant) {
  // Same circuit with the two ops created in the opposite order.
  Dfg a("v1", 2, 1);
  {
    const int add = a.add_node(Op::Add);
    const int mul = a.add_node(Op::Mult);
    a.connect({kPrimaryIn, 0}, {{add, 0}, {mul, 1}});
    a.connect({kPrimaryIn, 1}, {{add, 1}});
    a.connect({add, 0}, {{mul, 0}});
    a.connect({mul, 0}, {{kPrimaryOut, 0}});
    a.validate();
  }
  Dfg b("v2", 2, 1);
  {
    const int mul = b.add_node(Op::Mult);
    const int add = b.add_node(Op::Add);
    b.connect({kPrimaryIn, 0}, {{add, 0}, {mul, 1}});
    b.connect({kPrimaryIn, 1}, {{add, 1}});
    b.connect({add, 0}, {{mul, 0}});
    b.connect({mul, 0}, {{kPrimaryOut, 0}});
    b.validate();
  }
  const EquivResult r = verify_equivalent(a, b, stimulus());
  EXPECT_TRUE(r.equivalent) << r.method << ": " << r.detail;
}

TEST(Equiv, CommutedOperandsVerifyThroughReplay) {
  Dfg a("c1", 2, 1);
  {
    const int add = a.add_node(Op::Add);
    a.connect({kPrimaryIn, 0}, {{add, 0}});
    a.connect({kPrimaryIn, 1}, {{add, 1}});
    a.connect({add, 0}, {{kPrimaryOut, 0}});
    a.validate();
  }
  Dfg b("c2", 2, 1);
  {
    const int add = b.add_node(Op::Add);
    b.connect({kPrimaryIn, 0}, {{add, 1}});
    b.connect({kPrimaryIn, 1}, {{add, 0}});
    b.connect({add, 0}, {{kPrimaryOut, 0}});
    b.validate();
  }
  const EquivResult r = verify_equivalent(a, b, stimulus());
  EXPECT_TRUE(r.equivalent) << r.detail;
}

TEST(Equiv, MismatchedSignaturesAreRejectedUpFront) {
  Dfg a("w1", 2, 1);
  {
    const int add = a.add_node(Op::Add);
    a.connect({kPrimaryIn, 0}, {{add, 0}});
    a.connect({kPrimaryIn, 1}, {{add, 1}});
    a.connect({add, 0}, {{kPrimaryOut, 0}});
    a.validate();
  }
  Dfg b("w2", 1, 1);
  {
    const int neg = b.add_node(Op::Neg);
    b.connect({kPrimaryIn, 0}, {{neg, 0}});
    b.connect({neg, 0}, {{kPrimaryOut, 0}});
    b.validate();
  }
  const EquivResult r = verify_equivalent(a, b, stimulus());
  EXPECT_FALSE(r.equivalent);
  EXPECT_EQ(r.method, "io-signature");
}


// ---- Mutation suite ------------------------------------------------------
//
// Each mutator rebuilds OpSoup with exactly one semantic miscompile
// injected. verify_equivalent must refute every single one -- a missed
// mutant means the --verify-rewrites gate would wave a miscompiled
// rewrite through.

struct Mutation {
  std::string name;
  Dfg dfg;
};

std::vector<Mutation> mutations() {
  std::vector<Mutation> out;
  // 1. Swapped operands on each non-commutative op.
  for (const Op victim : {Op::Sub, Op::ShiftL, Op::ShiftR, Op::Cmp}) {
    Dfg d("soup", 2, 4);
    const int sub = d.add_node(Op::Sub);
    const int shl = d.add_node(Op::ShiftL);
    const int shr = d.add_node(Op::ShiftR);
    const int cmp = d.add_node(Op::Cmp);
    const int mult = d.add_node(Op::Mult);
    const int neg = d.add_node(Op::Neg);
    const int band = d.add_node(Op::And);
    const int bor = d.add_node(Op::Or);
    const int bxor = d.add_node(Op::Xor);
    const int add = d.add_node(Op::Add);
    const int victim_node = victim == Op::Sub    ? sub
                            : victim == Op::ShiftL ? shl
                            : victim == Op::ShiftR ? shr
                                                   : cmp;
    // Port of input 0 / input 1 on the victim is flipped.
    auto port = [&](int node, int normal) {
      return node == victim_node ? 1 - normal : normal;
    };
    d.connect({kPrimaryIn, 0},
              {{sub, port(sub, 0)},
               {shl, port(shl, 0)},
               {shr, port(shr, 0)},
               {cmp, port(cmp, 0)},
               {band, 0},
               {bor, 0}});
    d.connect({kPrimaryIn, 1},
              {{sub, port(sub, 1)},
               {shl, port(shl, 1)},
               {shr, port(shr, 1)},
               {cmp, port(cmp, 1)},
               {band, 1},
               {bor, 1}});
    d.connect({sub, 0}, {{mult, 0}, {add, 0}});
    d.connect({cmp, 0}, {{mult, 1}});
    d.connect({mult, 0}, {{add, 1}});
    d.connect({shl, 0}, {{neg, 0}});
    d.connect({band, 0}, {{bxor, 0}});
    d.connect({bor, 0}, {{bxor, 1}});
    d.connect({add, 0}, {{kPrimaryOut, 0}});
    d.connect({neg, 0}, {{kPrimaryOut, 1}});
    d.connect({shr, 0}, {{kPrimaryOut, 2}});
    d.connect({bxor, 0}, {{kPrimaryOut, 3}});
    d.validate();
    out.push_back({"swap-" + std::string(op_name(victim)), std::move(d)});
  }
  // 2. Op substitutions: one op family replaced by a near-miss sibling.
  struct Subst {
    std::string name;
    Op sub_op = Op::Sub, mult_op = Op::Mult, and_op = Op::And,
       xor_op = Op::Xor, shr_op = Op::ShiftR;
  };
  for (const Subst& s : {Subst{"subst-sub-to-add", Op::Add},
                         Subst{"subst-mult-to-add", Op::Sub, Op::Add},
                         Subst{"subst-and-to-or", Op::Sub, Op::Mult, Op::Or},
                         Subst{"subst-xor-to-and", Op::Sub, Op::Mult, Op::And,
                               Op::And},
                         Subst{"subst-shr-to-shl", Op::Sub, Op::Mult, Op::And,
                               Op::Xor, Op::ShiftL}}) {
    Dfg d("soup", 2, 4);
    const int sub = d.add_node(s.sub_op);
    const int shl = d.add_node(Op::ShiftL);
    const int shr = d.add_node(s.shr_op);
    const int cmp = d.add_node(Op::Cmp);
    const int mult = d.add_node(s.mult_op);
    const int neg = d.add_node(Op::Neg);
    const int band = d.add_node(s.and_op);
    const int bor = d.add_node(Op::Or);
    const int bxor = d.add_node(s.xor_op);
    const int add = d.add_node(Op::Add);
    d.connect({kPrimaryIn, 0},
              {{sub, 0}, {shl, 0}, {shr, 0}, {cmp, 0}, {band, 0}, {bor, 0}});
    d.connect({kPrimaryIn, 1},
              {{sub, 1}, {shl, 1}, {shr, 1}, {cmp, 1}, {band, 1}, {bor, 1}});
    d.connect({sub, 0}, {{mult, 0}, {add, 0}});
    d.connect({cmp, 0}, {{mult, 1}});
    d.connect({mult, 0}, {{add, 1}});
    d.connect({shl, 0}, {{neg, 0}});
    d.connect({band, 0}, {{bxor, 0}});
    d.connect({bor, 0}, {{bxor, 1}});
    d.connect({add, 0}, {{kPrimaryOut, 0}});
    d.connect({neg, 0}, {{kPrimaryOut, 1}});
    d.connect({shr, 0}, {{kPrimaryOut, 2}});
    d.connect({bxor, 0}, {{kPrimaryOut, 3}});
    d.validate();
    out.push_back({s.name, std::move(d)});
  }
  // 3. Dropped edge: Sub reads input 0 on both ports (b's edge dropped).
  {
    Dfg d("soup", 2, 4);
    const int sub = d.add_node(Op::Sub);
    const int shl = d.add_node(Op::ShiftL);
    const int shr = d.add_node(Op::ShiftR);
    const int cmp = d.add_node(Op::Cmp);
    const int mult = d.add_node(Op::Mult);
    const int neg = d.add_node(Op::Neg);
    const int band = d.add_node(Op::And);
    const int bor = d.add_node(Op::Or);
    const int bxor = d.add_node(Op::Xor);
    const int add = d.add_node(Op::Add);
    d.connect({kPrimaryIn, 0},
              {{sub, 0}, {sub, 1}, {shl, 0}, {shr, 0}, {cmp, 0}, {band, 0},
               {bor, 0}});
    d.connect({kPrimaryIn, 1},
              {{shl, 1}, {shr, 1}, {cmp, 1}, {band, 1}, {bor, 1}});
    d.connect({sub, 0}, {{mult, 0}, {add, 0}});
    d.connect({cmp, 0}, {{mult, 1}});
    d.connect({mult, 0}, {{add, 1}});
    d.connect({shl, 0}, {{neg, 0}});
    d.connect({band, 0}, {{bxor, 0}});
    d.connect({bor, 0}, {{bxor, 1}});
    d.connect({add, 0}, {{kPrimaryOut, 0}});
    d.connect({neg, 0}, {{kPrimaryOut, 1}});
    d.connect({shr, 0}, {{kPrimaryOut, 2}});
    d.connect({bxor, 0}, {{kPrimaryOut, 3}});
    d.validate();
    out.push_back({"dropped-edge-sub-b", std::move(d)});
  }
  // 4. Bypassed Neg: output 1 taps the shift directly.
  {
    Dfg d("soup", 2, 4);
    const int sub = d.add_node(Op::Sub);
    const int shl = d.add_node(Op::ShiftL);
    const int shr = d.add_node(Op::ShiftR);
    const int cmp = d.add_node(Op::Cmp);
    const int mult = d.add_node(Op::Mult);
    const int band = d.add_node(Op::And);
    const int bor = d.add_node(Op::Or);
    const int bxor = d.add_node(Op::Xor);
    const int add = d.add_node(Op::Add);
    d.connect({kPrimaryIn, 0},
              {{sub, 0}, {shl, 0}, {shr, 0}, {cmp, 0}, {band, 0}, {bor, 0}});
    d.connect({kPrimaryIn, 1},
              {{sub, 1}, {shl, 1}, {shr, 1}, {cmp, 1}, {band, 1}, {bor, 1}});
    d.connect({sub, 0}, {{mult, 0}, {add, 0}});
    d.connect({cmp, 0}, {{mult, 1}});
    d.connect({mult, 0}, {{add, 1}});
    d.connect({band, 0}, {{bxor, 0}});
    d.connect({bor, 0}, {{bxor, 1}});
    d.connect({add, 0}, {{kPrimaryOut, 0}});
    d.connect({shl, 0}, {{kPrimaryOut, 1}});
    d.connect({shr, 0}, {{kPrimaryOut, 2}});
    d.connect({bxor, 0}, {{kPrimaryOut, 3}});
    d.validate();
    out.push_back({"neg-bypass", std::move(d)});
  }
  // 5. Off-by-one input wiring: Cmp reads input 0 on both ports (the
  //    "wrong constant channel" shape -- stimulus channels differ, so
  //    the comparison result flips on some sample).
  {
    Dfg d("soup", 2, 4);
    const int sub = d.add_node(Op::Sub);
    const int shl = d.add_node(Op::ShiftL);
    const int shr = d.add_node(Op::ShiftR);
    const int cmp = d.add_node(Op::Cmp);
    const int mult = d.add_node(Op::Mult);
    const int neg = d.add_node(Op::Neg);
    const int band = d.add_node(Op::And);
    const int bor = d.add_node(Op::Or);
    const int bxor = d.add_node(Op::Xor);
    const int add = d.add_node(Op::Add);
    d.connect({kPrimaryIn, 0},
              {{sub, 0}, {shl, 0}, {shr, 0}, {cmp, 0}, {cmp, 1}, {band, 0},
               {bor, 0}});
    d.connect({kPrimaryIn, 1},
              {{sub, 1}, {shl, 1}, {shr, 1}, {band, 1}, {bor, 1}});
    d.connect({sub, 0}, {{mult, 0}, {add, 0}});
    d.connect({cmp, 0}, {{mult, 1}});
    d.connect({mult, 0}, {{add, 1}});
    d.connect({shl, 0}, {{neg, 0}});
    d.connect({band, 0}, {{bxor, 0}});
    d.connect({bor, 0}, {{bxor, 1}});
    d.connect({add, 0}, {{kPrimaryOut, 0}});
    d.connect({neg, 0}, {{kPrimaryOut, 1}});
    d.connect({shr, 0}, {{kPrimaryOut, 2}});
    d.connect({bxor, 0}, {{kPrimaryOut, 3}});
    d.validate();
    out.push_back({"rewired-cmp-channel", std::move(d)});
  }
  return out;
}

TEST(EquivMutation, CatchesEveryInjectedMiscompile) {
  const OpSoup golden;
  const Trace t = stimulus();
  int caught = 0, total = 0;
  for (const Mutation& m : mutations()) {
    ++total;
    const EquivResult r = verify_equivalent(golden.d, m.dfg, t);
    EXPECT_FALSE(r.equivalent)
        << "mutation '" << m.name << "' slipped past the validator ("
        << r.method << ")";
    if (!r.equivalent) {
      ++caught;
      EXPECT_FALSE(r.detail.empty()) << m.name;
    }
  }
  EXPECT_EQ(caught, total);  // the gate's acceptance bar: 100%
  EXPECT_GE(total, 11);
}

TEST(EquivMutation, RefutationsComeWithEvidence) {
  // The swapped-Sub mutant must be refuted with a concrete method name.
  const OpSoup golden;
  const auto muts = mutations();
  const EquivResult r = verify_equivalent(golden.d, muts[0].dfg, stimulus());
  ASSERT_FALSE(r.equivalent);
  EXPECT_TRUE(r.method == "dataflow-facts" ||
              r.method == "differential-replay")
      << r.method;
}

TEST(EquivMutation, EmptyTraceFallsBackToGeneratedStimulus) {
  // No stimulus provided: the validator generates a deterministic one,
  // which must still separate the golden graph from a mutant.
  const OpSoup golden;
  const auto muts = mutations();
  EXPECT_TRUE(verify_equivalent(golden.d, OpSoup().d, {}).equivalent);
  EXPECT_FALSE(verify_equivalent(golden.d, muts[0].dfg, {}).equivalent);
}

TEST(EquivMutation, RandomDfgSelfEquivalence) {
  // Every random DFG is equivalent to itself under a random stimulus --
  // guards against false positives in the refutation stages.
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    const Dfg d = testing_support::random_dfg(seed, 6 + seed % 9);
    const Trace t = make_trace(d.num_inputs(), 12, seed + 31);
    const EquivResult r = verify_equivalent(d, d, t);
    EXPECT_TRUE(r.equivalent) << "seed " << seed << ": " << r.detail;
  }
}

}  // namespace
}  // namespace hsyn
