#include <gtest/gtest.h>

#include "dfg/design.h"
#include "dfg/dfg.h"

namespace hsyn {
namespace {

Dfg simple_dfg() {
  // out = (a + b) * c
  Dfg d("simple", 3, 1);
  const int add = d.add_node(Op::Add, "+");
  const int mul = d.add_node(Op::Mult, "*");
  d.connect({kPrimaryIn, 0}, {{add, 0}});
  d.connect({kPrimaryIn, 1}, {{add, 1}});
  d.connect({kPrimaryIn, 2}, {{mul, 1}});
  d.connect({add, 0}, {{mul, 0}});
  d.connect({mul, 0}, {{kPrimaryOut, 0}});
  d.validate();
  return d;
}

TEST(Dfg, BuildAndValidate) {
  const Dfg d = simple_dfg();
  EXPECT_EQ(d.nodes().size(), 2u);
  EXPECT_EQ(d.edges().size(), 5u);
  EXPECT_TRUE(d.validated());
  EXPECT_FALSE(d.has_hierarchy());
  EXPECT_EQ(d.num_operation_nodes(), 2);
}

TEST(Dfg, TopologicalOrderRespectsDependencies) {
  const Dfg d = simple_dfg();
  const auto& topo = d.topo_order();
  ASSERT_EQ(topo.size(), 2u);
  EXPECT_EQ(topo[0], 0);  // add before mult
  EXPECT_EQ(topo[1], 1);
}

TEST(Dfg, EdgeLookups) {
  const Dfg d = simple_dfg();
  EXPECT_EQ(d.primary_input_edge(0), 0);
  EXPECT_EQ(d.primary_input_edge(2), 2);
  EXPECT_EQ(d.input_edge(1, 0), 3);  // mult port 0 fed by add output
  EXPECT_EQ(d.output_edge(1, 0), 4);
  EXPECT_EQ(d.primary_output_edge(0), 4);
}

TEST(Dfg, NodeEdgeVectors) {
  const Dfg d = simple_dfg();
  const auto ins = d.node_input_edges(1);
  ASSERT_EQ(ins.size(), 2u);
  EXPECT_EQ(ins[0], 3);
  EXPECT_EQ(ins[1], 2);
  EXPECT_EQ(d.node_output_edges(0).size(), 1u);
}

TEST(Dfg, DetectsUndrivenInput) {
  Dfg d("bad", 1, 1);
  const int add = d.add_node(Op::Add);
  d.connect({kPrimaryIn, 0}, {{add, 0}});
  d.connect({add, 0}, {{kPrimaryOut, 0}});
  EXPECT_THROW(d.validate(), std::logic_error);  // add input 1 undriven
}

TEST(Dfg, DetectsDoubleDrive) {
  Dfg d("bad", 2, 1);
  const int add = d.add_node(Op::Add);
  d.connect({kPrimaryIn, 0}, {{add, 0}});
  d.connect({kPrimaryIn, 1}, {{add, 1}});
  d.connect({add, 0}, {{kPrimaryOut, 0}});
  // Second edge into add port 0.
  d.connect({kPrimaryIn, 1}, {{add, 0}});
  EXPECT_THROW(d.validate(), std::logic_error);
}

TEST(Dfg, DetectsUndrivenPrimaryOutput) {
  Dfg d("bad", 2, 2);
  const int add = d.add_node(Op::Add);
  d.connect({kPrimaryIn, 0}, {{add, 0}});
  d.connect({kPrimaryIn, 1}, {{add, 1}});
  d.connect({add, 0}, {{kPrimaryOut, 0}});
  EXPECT_THROW(d.validate(), std::logic_error);  // output 1 unproduced
}

TEST(Dfg, DetectsCycle) {
  Dfg d("cyc", 1, 1);
  const int a = d.add_node(Op::Add);
  const int b = d.add_node(Op::Add);
  d.connect({kPrimaryIn, 0}, {{a, 0}, {b, 1}});
  d.connect({a, 0}, {{b, 0}, {kPrimaryOut, 0}});
  d.connect({b, 0}, {{a, 1}});  // b feeds a: cycle a -> b -> a
  EXPECT_THROW(d.validate(), std::logic_error);
}

TEST(Dfg, HierNodePortMismatchCaught) {
  Design design;
  Dfg child("child", 2, 1);
  const int add = child.add_node(Op::Add);
  child.connect({kPrimaryIn, 0}, {{add, 0}});
  child.connect({kPrimaryIn, 1}, {{add, 1}});
  child.connect({add, 0}, {{kPrimaryOut, 0}});
  design.add_behavior(std::move(child));

  Dfg top("top", 3, 1);
  const int h = top.add_hier_node("child", 3, 1);  // wrong arity (3 vs 2)
  top.connect({kPrimaryIn, 0}, {{h, 0}});
  top.connect({kPrimaryIn, 1}, {{h, 1}});
  top.connect({kPrimaryIn, 2}, {{h, 2}});
  top.connect({h, 0}, {{kPrimaryOut, 0}});
  design.add_behavior(std::move(top));
  design.set_top("top");
  EXPECT_THROW(design.validate(), std::logic_error);
}

TEST(Design, EquivalenceClasses) {
  Design design;
  auto mk = [](const std::string& name) {
    Dfg d(name, 2, 1);
    const int add = d.add_node(Op::Add);
    d.connect({kPrimaryIn, 0}, {{add, 0}});
    d.connect({kPrimaryIn, 1}, {{add, 1}});
    d.connect({add, 0}, {{kPrimaryOut, 0}});
    return d;
  };
  design.add_behavior(mk("a"));
  design.add_behavior(mk("b"));
  design.add_behavior(mk("c"));
  design.declare_equivalent("a", "b");
  EXPECT_EQ(design.equivalents("a").size(), 2u);
  EXPECT_EQ(design.equivalents("c").size(), 1u);
  design.declare_equivalent("b", "c");
  EXPECT_EQ(design.equivalents("a").size(), 3u);
}

TEST(Design, EquivalenceRequiresMatchingSignature) {
  Design design;
  Dfg a("a", 2, 1);
  const int add = a.add_node(Op::Add);
  a.connect({kPrimaryIn, 0}, {{add, 0}});
  a.connect({kPrimaryIn, 1}, {{add, 1}});
  a.connect({add, 0}, {{kPrimaryOut, 0}});
  design.add_behavior(std::move(a));
  Dfg b("b", 1, 1);
  const int neg = b.add_node(Op::Neg);
  b.connect({kPrimaryIn, 0}, {{neg, 0}});
  b.connect({neg, 0}, {{kPrimaryOut, 0}});
  design.add_behavior(std::move(b));
  EXPECT_THROW(design.declare_equivalent("a", "b"), std::logic_error);
}

TEST(Design, RecursiveHierarchyRejected) {
  Design design;
  Dfg a("a", 1, 1);
  const int h = a.add_hier_node("b", 1, 1);
  a.connect({kPrimaryIn, 0}, {{h, 0}});
  a.connect({h, 0}, {{kPrimaryOut, 0}});
  design.add_behavior(std::move(a));
  Dfg b("b", 1, 1);
  const int h2 = b.add_hier_node("a", 1, 1);
  b.connect({kPrimaryIn, 0}, {{h2, 0}});
  b.connect({h2, 0}, {{kPrimaryOut, 0}});
  design.add_behavior(std::move(b));
  design.set_top("a");
  EXPECT_THROW(design.validate(), std::logic_error);
}

TEST(Design, FlattenedSizeAndDepth) {
  Design design;
  Dfg leaf("leaf", 2, 1);
  const int add = leaf.add_node(Op::Add);
  leaf.connect({kPrimaryIn, 0}, {{add, 0}});
  leaf.connect({kPrimaryIn, 1}, {{add, 1}});
  leaf.connect({add, 0}, {{kPrimaryOut, 0}});
  design.add_behavior(std::move(leaf));

  Dfg mid("mid", 2, 1);
  const int h1 = mid.add_hier_node("leaf", 2, 1);
  const int h2 = mid.add_hier_node("leaf", 2, 1);
  mid.connect({kPrimaryIn, 0}, {{h1, 0}, {h2, 0}});
  mid.connect({kPrimaryIn, 1}, {{h1, 1}});
  mid.connect({h1, 0}, {{h2, 1}});
  mid.connect({h2, 0}, {{kPrimaryOut, 0}});
  design.add_behavior(std::move(mid));
  design.set_top("mid");
  design.validate();
  EXPECT_EQ(design.flattened_size("mid"), 2);
  EXPECT_EQ(design.depth("mid"), 1);
  EXPECT_EQ(design.depth("leaf"), 0);
}

TEST(OpMeta, NamesAndArity) {
  EXPECT_STREQ(op_name(Op::Add), "add");
  EXPECT_STREQ(op_name(Op::Mult), "mult");
  EXPECT_EQ(op_arity(Op::Neg), 1);
  EXPECT_EQ(op_arity(Op::Add), 2);
}

}  // namespace
}  // namespace hsyn
