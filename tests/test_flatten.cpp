#include <gtest/gtest.h>

#include "benchmarks/benchmarks.h"
#include "dfg/flatten.h"
#include "power/trace.h"

namespace hsyn {
namespace {

/// Behavior resolver backed by a Design.
BehaviorResolver design_resolver(const Design& d) {
  return [&d](const std::string& name) -> const Dfg* {
    return d.has_behavior(name) ? &d.behavior(name) : nullptr;
  };
}

class FlattenEquivalence : public ::testing::TestWithParam<std::string> {};

TEST_P(FlattenEquivalence, FlattenedMatchesHierarchicalValues) {
  const Library lib = default_library();
  const Benchmark bench = make_benchmark(GetParam(), lib);
  const Dfg flat = flatten_top(bench.design);
  EXPECT_FALSE(flat.has_hierarchy());
  EXPECT_EQ(flat.num_inputs(), bench.design.top().num_inputs());
  EXPECT_EQ(flat.num_outputs(), bench.design.top().num_outputs());

  const Trace trace = make_trace(flat.num_inputs(), 16, 99);
  const auto hier_out =
      eval_dfg(bench.design.top(), design_resolver(bench.design), trace);
  const auto flat_out = eval_dfg(flat, nullptr, trace);
  ASSERT_EQ(hier_out.size(), flat_out.size());
  for (std::size_t t = 0; t < trace.size(); ++t) {
    EXPECT_EQ(hier_out[t], flat_out[t]) << "sample " << t;
  }
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, FlattenEquivalence,
                         ::testing::Values("avenhaus_cascade", "lat", "dct",
                                           "iir", "hier_paulin", "test1",
                                           "fir16", "dct2d"));

TEST(Flatten, SizeMatchesDesignAccounting) {
  const Library lib = default_library();
  const Benchmark bench = make_benchmark("hier_paulin", lib);
  const Dfg flat = flatten_top(bench.design);
  EXPECT_EQ(static_cast<int>(flat.nodes().size()),
            bench.design.flattened_size("hier_paulin"));
  // 3 unrolled iterations x 10 operations each.
  EXPECT_EQ(flat.nodes().size(), 30u);
}

TEST(Flatten, LabelsCarryHierarchicalPath) {
  const Library lib = default_library();
  const Benchmark bench = make_benchmark("iir", lib);
  const Dfg flat = flatten_top(bench.design);
  bool found = false;
  for (const Node& n : flat.nodes()) {
    if (n.label.rfind("bq0/", 0) == 0) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Flatten, DeepHierarchy) {
  // Three levels: top -> mid -> leaf.
  Design design;
  Dfg leaf("leaf", 2, 1);
  const int add = leaf.add_node(Op::Add);
  leaf.connect({kPrimaryIn, 0}, {{add, 0}});
  leaf.connect({kPrimaryIn, 1}, {{add, 1}});
  leaf.connect({add, 0}, {{kPrimaryOut, 0}});
  design.add_behavior(std::move(leaf));

  Dfg mid("mid", 2, 1);
  const int h1 = mid.add_hier_node("leaf", 2, 1);
  const int h2 = mid.add_hier_node("leaf", 2, 1);
  mid.connect({kPrimaryIn, 0}, {{h1, 0}, {h2, 1}});
  mid.connect({kPrimaryIn, 1}, {{h1, 1}});
  mid.connect({h1, 0}, {{h2, 0}});
  mid.connect({h2, 0}, {{kPrimaryOut, 0}});
  design.add_behavior(std::move(mid));

  Dfg top("top", 2, 1);
  const int h = top.add_hier_node("mid", 2, 1);
  top.connect({kPrimaryIn, 0}, {{h, 0}});
  top.connect({kPrimaryIn, 1}, {{h, 1}});
  top.connect({h, 0}, {{kPrimaryOut, 0}});
  design.add_behavior(std::move(top));
  design.set_top("top");
  design.validate();

  const Dfg flat = flatten_top(design);
  EXPECT_EQ(flat.nodes().size(), 2u);
  const Trace trace = make_trace(2, 8, 5);
  const auto out = eval_dfg(flat, nullptr, trace);
  for (std::size_t t = 0; t < trace.size(); ++t) {
    // top(a,b) = (a+b) + a
    EXPECT_EQ(out[t][0], mask16(static_cast<std::int64_t>(trace[t][0]) +
                                trace[t][1] + trace[t][0]));
  }
}

TEST(Flatten, PassThroughOutputs) {
  const Library lib = default_library();
  const Benchmark bench = make_benchmark("avenhaus_cascade", lib);
  const Dfg flat = flatten_top(bench.design);
  const Trace trace = make_trace(flat.num_inputs(), 4, 3);
  const auto out = eval_dfg(flat, nullptr, trace);
  // Output 1 of the first section is the pass-through x1' = x.
  for (std::size_t t = 0; t < trace.size(); ++t) {
    EXPECT_EQ(out[t][1], trace[t][0]);
  }
}

}  // namespace
}  // namespace hsyn
