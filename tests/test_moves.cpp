#include <gtest/gtest.h>

#include "benchmarks/benchmarks.h"
#include "power/rtlsim.h"
#include "rtl/cost.h"
#include "sched/scheduler.h"
#include "synth/initial.h"
#include "synth/moves.h"

namespace hsyn {
namespace {

const OpPoint kRef{5.0, 20.0};

struct Fixture {
  Library lib = default_library();
  Benchmark bench;
  SynthContext cx;
  Datapath dp;

  explicit Fixture(const std::string& name, Objective obj, int extra_slack)
      : bench(make_benchmark(name, lib)) {
    cx.design = &bench.design;
    cx.lib = &lib;
    cx.clib = &bench.clib;
    cx.pt = kRef;
    cx.obj = obj;
    cx.trace = make_trace(bench.design.top().num_inputs(), 16, 3);
    dp = initial_solution(bench.design.top(), name, cx);
    const SchedResult r = schedule_datapath(dp, lib, kRef, kNoDeadline);
    cx.deadline = r.makespan + extra_slack;
  }
};

TEST(Moves, FinishMoveRejectsInfeasible) {
  Fixture f("test1", Objective::Area, 0);
  // Swap every fast mult for the slow mult2 -- with zero slack this must
  // fail scheduling somewhere inside a child... at top level there are no
  // fus, so test on a flat design instead.
  Design design;
  design.add_behavior(make_paulin_iter("paulin"));
  design.set_top("paulin");
  SynthContext cx;
  cx.design = &design;
  cx.lib = &f.lib;
  cx.pt = kRef;
  cx.obj = Objective::Area;
  Datapath dp = initial_solution(design.top(), "paulin", cx);
  const SchedResult r = schedule_datapath(dp, f.lib, kRef, kNoDeadline);
  cx.deadline = r.makespan;  // zero slack
  Datapath cand = dp;
  const int m2 = f.lib.find_fu("mult2");
  for (FuUnit& fu : cand.fus) {
    if (f.lib.fu(fu.type).supports(Op::Mult)) fu.type = m2;
  }
  const Move m = finish_move(std::move(cand), cx, cost_of(dp, cx), "A:test",
                             "all mult2");
  EXPECT_FALSE(m.valid);
}

TEST(Moves, ReplaceMoveFindsLowPowerMultSwap) {
  // Example 2's signature move: with slack available, the power objective
  // swaps mult1 -> mult2 somewhere (directly or via a template).
  Fixture f("test1", Objective::Power, 8);
  const Move m = best_replace_move(f.dp, f.cx);
  ASSERT_TRUE(m.valid);
  EXPECT_GT(m.gain, 0);
  EXPECT_TRUE(m.kind.rfind("A:", 0) == 0 || m.kind.rfind("B:", 0) == 0)
      << m.kind;
}

TEST(Moves, SharingMoveValidAndSchedulable) {
  Fixture f("test1", Objective::Area, 10);
  const Move m = best_sharing_move(f.dp, f.cx);
  ASSERT_TRUE(m.valid);
  EXPECT_NO_THROW(m.result.validate(f.lib));
  EXPECT_LE(m.result.behaviors[0].makespan, f.cx.deadline);
  // Area objective: the best sharing move should save area.
  EXPECT_GT(m.gain, 0);
}

TEST(Moves, SplittingMoveAfterSharing) {
  Fixture f("test1", Objective::Power, 10);
  // First share something, then splitting must be able to undo.
  const Move share = best_sharing_move(f.dp, f.cx);
  ASSERT_TRUE(share.valid);
  const Move split = best_splitting_move(share.result, f.cx);
  ASSERT_TRUE(split.valid);
  EXPECT_NO_THROW(split.result.validate(f.lib));
}

TEST(Moves, GainMatchesCostDelta) {
  Fixture f("iir", Objective::Area, 6);
  const double before = cost_of(f.dp, f.cx);
  const Move m = best_sharing_move(f.dp, f.cx);
  ASSERT_TRUE(m.valid);
  const double after = cost_of(m.result, f.cx);
  EXPECT_NEAR(m.gain, before - after, 1e-9);
}

TEST(Moves, MovesPreserveFunctionalCorrectness) {
  Fixture f("iir", Objective::Area, 8);
  Datapath cur = f.dp;
  const Trace trace = make_trace(f.bench.design.top().num_inputs(), 12, 31);
  for (int step = 0; step < 4; ++step) {
    Move m = best_sharing_move(cur, f.cx);
    m = better_move(m, best_replace_move(cur, f.cx));
    if (!m.valid) break;
    cur = m.result;
    const RtlSimResult r = simulate_rtl(cur, 0, trace, f.lib, kRef);
    ASSERT_TRUE(r.ok) << "step " << step << ": "
                      << (r.violations.empty() ? "" : r.violations[0]);
  }
}

TEST(Moves, DisabledGeneratorsReturnInvalid) {
  Fixture f("test1", Objective::Area, 8);
  f.cx.opts.enable_share = false;
  EXPECT_FALSE(best_sharing_move(f.dp, f.cx).valid);
  f.cx.opts.enable_split = false;
  EXPECT_FALSE(best_splitting_move(f.dp, f.cx).valid);
  f.cx.opts.enable_replace = false;
  f.cx.opts.enable_resynth = false;
  EXPECT_FALSE(best_replace_move(f.dp, f.cx).valid);
}

TEST(Moves, ChildInputTraceShape) {
  Fixture f("iir", Objective::Power, 6);
  const Trace t = child_input_trace(f.dp, 0, 0, "biquad", f.cx);
  // One invocation of child 0 per sample.
  EXPECT_EQ(t.size(), f.cx.trace.size());
  ASSERT_FALSE(t.empty());
  EXPECT_EQ(t[0].size(), 8u);  // biquad has 8 inputs
}

TEST(Moves, EmbeddingMoveAppearsOnTest1) {
  // test1's area-optimized flow historically embeds two modules; make
  // sure at least one embedding candidate evaluates as valid by running
  // the generator with generous slack and scanning the description.
  Fixture f("test1", Objective::Area, 16);
  Datapath cur = f.dp;
  bool saw_embed_or_reuse = false;
  for (int step = 0; step < 6 && !saw_embed_or_reuse; ++step) {
    const Move m = best_sharing_move(cur, f.cx);
    if (!m.valid) break;
    if (m.kind == "C:embed" || m.desc.rfind("reuse", 0) == 0) {
      saw_embed_or_reuse = true;
    }
    cur = m.result;
  }
  EXPECT_TRUE(saw_embed_or_reuse);
}

}  // namespace
}  // namespace hsyn
