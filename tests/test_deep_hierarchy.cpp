// Depth-2 hierarchy (dct2d: dct4 modules that contain butterfly/rot
// modules): recursive construction, alignment, resynthesis and
// verification all the way down.
#include <gtest/gtest.h>

#include "benchmarks/benchmarks.h"
#include "dfg/flatten.h"
#include "power/rtlsim.h"
#include "sched/scheduler.h"
#include "synth/initial.h"
#include "synth/synthesizer.h"

namespace hsyn {
namespace {

const OpPoint kRef{5.0, 20.0};

TEST(DeepHierarchy, StructureIsTwoLevels) {
  const Library lib = default_library();
  const Benchmark bench = make_benchmark("dct2d", lib);
  EXPECT_EQ(bench.design.depth("dct2d"), 2);
  // 8 dct4 instances x (3 butterflies x 2 ops + rot 6 ops) = 96 ops.
  EXPECT_EQ(bench.design.flattened_size("dct2d"), 96);
}

TEST(DeepHierarchy, FlattenedValuesMatch) {
  const Library lib = default_library();
  const Benchmark bench = make_benchmark("dct2d", lib);
  const Dfg flat = flatten_top(bench.design);
  const BehaviorResolver res = [&](const std::string& n) -> const Dfg* {
    return bench.design.has_behavior(n) ? &bench.design.behavior(n) : nullptr;
  };
  const Trace in = make_trace(18, 8, 3);
  EXPECT_EQ(eval_dfg(bench.design.top(), res, in), eval_dfg(flat, nullptr, in));
}

TEST(DeepHierarchy, InitialSolutionNestsTwoLevels) {
  const Library lib = default_library();
  const Benchmark bench = make_benchmark("dct2d", lib);
  SynthContext cx;
  cx.design = &bench.design;
  cx.lib = &lib;
  cx.clib = &bench.clib;
  cx.pt = kRef;
  Datapath dp = initial_solution(bench.design.top(), "dct2d", cx);
  ASSERT_EQ(dp.children.size(), 8u);  // eight dct4 instances
  // Each dct4 instance itself holds butterfly/rot children.
  for (const ChildUnit& c : dp.children) {
    EXPECT_GE(c.impl->children.size(), 1u);
  }
  EXPECT_NO_THROW(dp.validate(lib));
  const int aligned = align_child_profiles(dp, lib, kRef);
  ASSERT_GT(aligned, 0);

  const Trace trace = make_trace(18, 8, 9);
  const RtlSimResult r = simulate_rtl(dp, 0, trace, lib, kRef);
  EXPECT_TRUE(r.ok) << (r.violations.empty() ? "" : r.violations[0]);
}

TEST(DeepHierarchy, AlignmentMatchesFlatCriticalPath) {
  const Library lib = default_library();
  const Benchmark bench = make_benchmark("dct2d", lib);
  const Dfg flat = flatten_top(bench.design);

  SynthContext cxh;
  cxh.design = &bench.design;
  cxh.lib = &lib;
  cxh.clib = &bench.clib;
  cxh.pt = kRef;
  Datapath h = initial_solution(bench.design.top(), "dct2d", cxh);
  const int hier_makespan = align_child_profiles(h, lib, kRef);

  SynthContext cxf;
  cxf.lib = &lib;
  cxf.pt = kRef;
  Datapath f = initial_solution(flat, "flat", cxf);
  const SchedResult fr = schedule_datapath(f, lib, kRef, kNoDeadline);
  ASSERT_TRUE(fr.ok);
  // Two levels of module-boundary quantization: allow a small overhead.
  EXPECT_LE(hier_makespan, fr.makespan + 2);
}

TEST(DeepHierarchy, SynthesizesAndVerifies) {
  const Library lib = default_library();
  const Benchmark bench = make_benchmark("dct2d", lib);
  const double ts = 2.2 * min_sample_period_ns(bench.design, lib);
  SynthOptions opts;
  opts.max_passes = 2;
  opts.max_moves_per_pass = 6;
  opts.max_candidates = 8;
  opts.trace_samples = 12;
  opts.max_clocks = 2;
  const SynthResult r = synthesize(bench.design, lib, &bench.clib, ts,
                                   Objective::Area, Mode::Hierarchical, opts);
  ASSERT_TRUE(r.ok) << r.fail_reason;
  const Trace trace = make_trace(18, 6, 11);
  const RtlSimResult sim = simulate_rtl(r.dp, 0, trace, lib, r.pt);
  EXPECT_TRUE(sim.ok) << (sim.violations.empty() ? "" : sim.violations[0]);
}

}  // namespace
}  // namespace hsyn
