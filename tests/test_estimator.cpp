#include <gtest/gtest.h>

#include "benchmarks/benchmarks.h"
#include "power/estimator.h"
#include "sched/scheduler.h"
#include "synth/initial.h"

namespace hsyn {
namespace {

const OpPoint kRef{5.0, 20.0};

struct Fixture {
  Library lib = default_library();
  Design design;
  Datapath dp;
  Trace trace;

  explicit Fixture(const std::string& which = "paulin") {
    design.add_behavior(make_paulin_iter("paulin"));
    design.set_top("paulin");
    design.validate();
    (void)which;
    SynthContext cx;
    cx.design = &design;
    cx.lib = &lib;
    cx.pt = kRef;
    dp = initial_solution(design.top(), "paulin", cx);
    schedule_datapath(dp, lib, kRef, kNoDeadline);
    trace = make_trace(design.top().num_inputs(), 32, 11);
  }
};

TEST(Estimator, EnergyPositiveAndDecomposed) {
  Fixture f;
  const EnergyBreakdown e = energy_of(f.dp, 0, f.trace, f.lib, kRef);
  EXPECT_GT(e.fu, 0);
  EXPECT_GT(e.reg, 0);
  EXPECT_GT(e.wire, 0);
  EXPECT_GT(e.ctrl, 0);
  EXPECT_DOUBLE_EQ(e.mux, 0);  // fully parallel: no muxes
  EXPECT_DOUBLE_EQ(e.children, 0);
  EXPECT_NEAR(e.total(), e.fu + e.reg + e.mux + e.wire + e.ctrl, 1e-9);
}

TEST(Estimator, VddScalingIsQuadratic) {
  Fixture f;
  const double e5 = energy_of(f.dp, 0, f.trace, f.lib, {5.0, 20.0}).total();
  // Same binding/schedule evaluated at 2.5 V (cycle counts change, but
  // re-schedule keeps the same fully parallel structure).
  OpPoint low{2.5, 20.0};
  ASSERT_TRUE(schedule_datapath(f.dp, f.lib, low, kNoDeadline).ok);
  const double e25 = energy_of(f.dp, 0, f.trace, f.lib, low).total();
  // Controller term grows with the longer schedule, so allow slack above
  // the pure quadratic prediction.
  EXPECT_LT(e25, e5 * 0.45);
  EXPECT_GT(e25, e5 * 0.15);
}

TEST(Estimator, SharingRaisesFunctionalUnitActivity) {
  // The Example 2 effect: interleaving two weakly correlated multiply
  // streams on one unit raises its switching energy above the sum of the
  // dedicated-unit energies.
  Fixture shared;
  Fixture parallel;
  BehaviorImpl& bi = shared.dp.behaviors[0];
  int first = -1;
  for (Invocation& inv : bi.invs) {
    if (bi.dfg->node(inv.nodes[0]).op != Op::Mult) continue;
    if (first < 0) {
      first = inv.unit.idx;
    } else {
      inv.unit.idx = first;
    }
  }
  shared.dp.prune_unused();
  ASSERT_TRUE(schedule_datapath(shared.dp, shared.lib, kRef, kNoDeadline).ok);
  const double e_shared =
      energy_of(shared.dp, 0, shared.trace, shared.lib, kRef).fu;
  const double e_par =
      energy_of(parallel.dp, 0, parallel.trace, parallel.lib, kRef).fu;
  EXPECT_GT(e_shared, e_par * 1.02);
}

TEST(Estimator, PowerIsEnergyOverPeriod) {
  Fixture f;
  const double e = energy_of(f.dp, 0, f.trace, f.lib, kRef).total();
  const double p = power_of(f.dp, 0, f.trace, f.lib, kRef, 200.0);
  EXPECT_NEAR(p, e / 200.0, 1e-12);
}

TEST(Estimator, EmptyTraceGivesZero) {
  Fixture f;
  const EnergyBreakdown e = energy_of(f.dp, 0, {}, f.lib, kRef);
  EXPECT_DOUBLE_EQ(e.total(), 0);
}

TEST(Estimator, ChildrenEnergyAccounted) {
  const Library lib = default_library();
  const Benchmark bench = make_benchmark("iir", lib);
  SynthContext cx;
  cx.design = &bench.design;
  cx.lib = &lib;
  cx.clib = &bench.clib;
  cx.pt = kRef;
  Datapath dp = initial_solution(bench.design.top(), "iir", cx);
  ASSERT_TRUE(schedule_datapath(dp, lib, kRef, kNoDeadline).ok);
  const Trace trace = make_trace(bench.design.top().num_inputs(), 24, 3);
  const EnergyBreakdown e = energy_of(dp, 0, trace, lib, kRef);
  EXPECT_GT(e.children, 0);
  EXPECT_GT(e.children, e.fu);  // all arithmetic lives in the biquads
}

TEST(Estimator, ResolverFindsNestedBehaviors) {
  const Library lib = default_library();
  const Benchmark bench = make_benchmark("dct", lib);
  SynthContext cx;
  cx.design = &bench.design;
  cx.lib = &lib;
  cx.clib = &bench.clib;
  cx.pt = kRef;
  Datapath dp = initial_solution(bench.design.top(), "dct", cx);
  const BehaviorResolver res = resolver_of(dp);
  EXPECT_NE(res("butterfly"), nullptr);
  EXPECT_NE(res("rot"), nullptr);
  EXPECT_EQ(res("missing"), nullptr);
}

TEST(Estimator, DeterministicAcrossCalls) {
  Fixture f;
  const double a = energy_of(f.dp, 0, f.trace, f.lib, kRef).total();
  const double b = energy_of(f.dp, 0, f.trace, f.lib, kRef).total();
  EXPECT_DOUBLE_EQ(a, b);
}

}  // namespace
}  // namespace hsyn
