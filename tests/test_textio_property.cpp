// Property: arbitrary generated designs round-trip through the textual
// format losslessly (structure, behavior and evaluation results).
#include <gtest/gtest.h>

#include "dfg/textio.h"
#include "power/trace.h"
#include "random_dfg.h"

namespace hsyn {
namespace {

using testing_support::random_dfg;

class TextIoRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(TextIoRoundTrip, RandomDesignsSurvive) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam()) + 900;
  Design design;
  design.add_behavior(random_dfg(seed, 10));
  design.add_behavior(random_dfg(seed + 1, 7));
  const std::string leaf0 = design.behavior_names()[0];
  const std::string leaf1 = design.behavior_names()[1];

  // A top level instantiating both leaves (arities vary per seed).
  const Dfg& d0 = design.behavior(leaf0);
  const Dfg& d1 = design.behavior(leaf1);
  Dfg top("top", d0.num_inputs() + d1.num_inputs(),
          d0.num_outputs() + d1.num_outputs());
  const int h0 = top.add_hier_node(leaf0, d0.num_inputs(), d0.num_outputs());
  const int h1 = top.add_hier_node(leaf1, d1.num_inputs(), d1.num_outputs());
  for (int i = 0; i < d0.num_inputs(); ++i) {
    top.connect({kPrimaryIn, i}, {{h0, i}});
  }
  for (int i = 0; i < d1.num_inputs(); ++i) {
    top.connect({kPrimaryIn, d0.num_inputs() + i}, {{h1, i}});
  }
  for (int o = 0; o < d0.num_outputs(); ++o) {
    top.connect({h0, o}, {{kPrimaryOut, o}});
  }
  for (int o = 0; o < d1.num_outputs(); ++o) {
    top.connect({h1, o}, {{kPrimaryOut, d0.num_outputs() + o}});
  }
  top.validate();
  design.add_behavior(std::move(top));
  design.set_top("top");
  design.validate();

  const std::string text = design_to_text(design);
  const Design parsed = design_from_text(text);
  EXPECT_EQ(design_to_text(parsed), text);  // fixed point

  // Evaluation results identical.
  const BehaviorResolver res_a = [&](const std::string& n) -> const Dfg* {
    return design.has_behavior(n) ? &design.behavior(n) : nullptr;
  };
  const BehaviorResolver res_b = [&](const std::string& n) -> const Dfg* {
    return parsed.has_behavior(n) ? &parsed.behavior(n) : nullptr;
  };
  const Trace in = make_trace(design.top().num_inputs(), 8, seed + 2);
  EXPECT_EQ(eval_dfg(design.top(), res_a, in), eval_dfg(parsed.top(), res_b, in));
}

INSTANTIATE_TEST_SUITE_P(Seeds, TextIoRoundTrip, ::testing::Range(0, 12));

}  // namespace
}  // namespace hsyn
