#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "library/library.h"

namespace hsyn {
namespace {

/// The paper's Table 1 cycle counts at the reference operating point
/// (5 V, 20 ns clock).
TEST(Library, Table1CycleCountsAtReferencePoint) {
  const Library lib = default_library();
  const OpPoint ref{5.0, 20.0};
  EXPECT_EQ(lib.cycles(lib.find_fu("add1"), ref), 1);
  EXPECT_EQ(lib.cycles(lib.find_fu("add2"), ref), 2);
  EXPECT_EQ(lib.cycles(lib.find_fu("chained_add2"), ref), 2);  // 22 ns
  EXPECT_EQ(lib.cycles(lib.find_fu("chained_add3"), ref), 2);  // 24 ns
  EXPECT_EQ(lib.cycles(lib.find_fu("mult1"), ref), 3);
  EXPECT_EQ(lib.cycles(lib.find_fu("mult2"), ref), 5);
}

TEST(Library, Table1Areas) {
  const Library lib = default_library();
  EXPECT_DOUBLE_EQ(lib.fu(lib.find_fu("add1")).area, 30);
  EXPECT_DOUBLE_EQ(lib.fu(lib.find_fu("add2")).area, 20);
  EXPECT_DOUBLE_EQ(lib.fu(lib.find_fu("chained_add2")).area, 60);
  EXPECT_DOUBLE_EQ(lib.fu(lib.find_fu("chained_add3")).area, 90);
  EXPECT_DOUBLE_EQ(lib.fu(lib.find_fu("mult1")).area, 150);
  EXPECT_DOUBLE_EQ(lib.fu(lib.find_fu("mult2")).area, 100);
  EXPECT_DOUBLE_EQ(lib.reg().area, 10);
}

TEST(Library, Mult2ConsumesLessThanMult1) {
  const Library lib = default_library();
  EXPECT_LT(lib.fu(lib.find_fu("mult2")).cap_sw,
            lib.fu(lib.find_fu("mult1")).cap_sw * 0.6);
}

TEST(Library, FastestForPicksMinimumCycles) {
  const Library lib = default_library();
  const OpPoint ref{5.0, 20.0};
  EXPECT_EQ(lib.fastest_for(Op::Mult, ref), lib.find_fu("mult1"));
  EXPECT_EQ(lib.fastest_for(Op::Add, ref), lib.find_fu("add1"));
  // ALU also does adds but is slower than add1 at 20 ns (24 ns -> 2 cyc).
  EXPECT_NE(lib.fastest_for(Op::Add, ref), lib.find_fu("alu1"));
}

TEST(Library, TypesForMultifunction) {
  const Library lib = default_library();
  const auto add_types = lib.types_for(Op::Add);
  EXPECT_GE(add_types.size(), 5u);  // add1, add2, chains, alu1
  const auto cmp_types = lib.types_for(Op::Cmp);
  EXPECT_GE(cmp_types.size(), 2u);  // cmp1, alu1
}

TEST(Library, DuplicateNameRejected) {
  Library lib = default_library();
  EXPECT_THROW(lib.add_fu({.name = "add1", .ops = {Op::Add}, .area = 1,
                           .delay_ns = 1, .cap_sw = 1}),
               std::logic_error);
}

TEST(Vdd, DelayScaleIsOneAtReference) {
  EXPECT_NEAR(delay_scale(5.0), 1.0, 1e-12);
}

TEST(Vdd, DelayGrowsAsVddDrops) {
  // Alpha-power law with a = 1.4 (velocity saturation): moderate
  // slowdowns for large quadratic energy wins.
  EXPECT_GT(delay_scale(3.3), 1.25);
  EXPECT_LT(delay_scale(3.3), 1.5);
  EXPECT_GT(delay_scale(2.4), delay_scale(3.3));
  EXPECT_GT(delay_scale(1.5), delay_scale(2.4));
  EXPECT_GT(delay_scale(1.5), 3.0);
}

TEST(Vdd, EnergyQuadratic) {
  EXPECT_NEAR(energy_scale(5.0), 1.0, 1e-12);
  EXPECT_NEAR(energy_scale(2.5), 0.25, 1e-12);
}

TEST(Vdd, CyclesAtScalesWithVoltage) {
  // mult1 at 5 V / 20 ns = 3 cycles; at 3.3 V it takes ~75 ns -> 4.
  EXPECT_EQ(cycles_at(55, 5.0, 20), 3);
  EXPECT_EQ(cycles_at(55, 3.3, 20), 4);
  EXPECT_GE(cycles_at(55, 1.5, 20), 10);
}

TEST(Vdd, CyclesAtLeastOne) {
  EXPECT_EQ(cycles_at(1.0, 5.0, 100), 1);
}

TEST(Vdd, PruneDropsInfeasibleSupplies) {
  // Keeps exactly the supplies whose scaled critical path fits.
  const double crit = 100, ts = 250;
  const auto pruned = prune_vdds(default_vdds(), crit, ts);
  ASSERT_FALSE(pruned.empty());
  EXPECT_DOUBLE_EQ(pruned[0], 5.0);
  for (const double v : default_vdds()) {
    const bool fits = crit * delay_scale(v) <= ts;
    const bool kept =
        std::find(pruned.begin(), pruned.end(), v) != pruned.end();
    EXPECT_EQ(fits, kept) << "vdd " << v;
  }
  // 1.5 V (scale ~3.7) must be out.
  EXPECT_EQ(std::find(pruned.begin(), pruned.end(), 1.5), pruned.end());
}

TEST(Vdd, CandidateClocksDeduplicateBySignature) {
  const Library lib = default_library();
  const auto clocks = candidate_clocks(lib.fus(), 5.0);
  ASSERT_FALSE(clocks.empty());
  // Descending and unique.
  for (std::size_t i = 1; i < clocks.size(); ++i) {
    EXPECT_LT(clocks[i], clocks[i - 1]);
  }
  // Every clock produces a distinct cycle-count signature.
  std::set<std::vector<int>> sigs;
  for (const double c : clocks) {
    std::vector<int> sig;
    for (const FuType& fu : lib.fus()) sig.push_back(cycles_at(fu.delay_ns, 5.0, c));
    EXPECT_TRUE(sigs.insert(sig).second) << "duplicate signature at clk " << c;
  }
}

TEST(Vdd, CandidateClocksRespectBounds) {
  const Library lib = default_library();
  for (const double c : candidate_clocks(lib.fus(), 5.0, 10, 60)) {
    EXPECT_GE(c, 10.0);
    EXPECT_LE(c, 60.0);
  }
}

}  // namespace
}  // namespace hsyn
