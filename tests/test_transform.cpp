// Behavioral transformations: exact semantics preservation (property
// checked on random DFGs), structural effects (CSE merges, reshaping
// changes depth), and the auto-variant path into move A.
#include <gtest/gtest.h>

#include "dfg/analysis.h"
#include "dfg/transform.h"
#include "power/trace.h"
#include "random_dfg.h"
#include "synth/synthesizer.h"

#include "benchmarks/benchmarks.h"

namespace hsyn {
namespace {

using testing_support::random_dfg;

LatencyFn unit_latency() {
  return [](const Node&) { return 1; };
}

TEST(Transform, DeadNodeEliminationDropsUnreachable) {
  Dfg d("dead", 2, 1);
  const int used = d.add_node(Op::Add);
  const int dead = d.add_node(Op::Mult);
  d.connect({kPrimaryIn, 0}, {{used, 0}, {dead, 0}});
  d.connect({kPrimaryIn, 1}, {{used, 1}, {dead, 1}});
  d.connect({used, 0}, {{kPrimaryOut, 0}});
  d.connect({dead, 0}, {});  // result unused
  d.validate();
  const Dfg out = eliminate_dead_nodes(d);
  EXPECT_EQ(out.nodes().size(), 1u);
  const Trace in = make_trace(2, 8, 3);
  EXPECT_EQ(eval_dfg(d, nullptr, in), eval_dfg(out, nullptr, in));
}

TEST(Transform, CseMergesDuplicates) {
  // (a+b)*c and (b+a)*c share the commutative addition.
  Dfg d("dup", 3, 2);
  const int s1 = d.add_node(Op::Add);
  const int s2 = d.add_node(Op::Add);
  const int m1 = d.add_node(Op::Mult);
  const int m2 = d.add_node(Op::Mult);
  d.connect({kPrimaryIn, 0}, {{s1, 0}, {s2, 1}});
  d.connect({kPrimaryIn, 1}, {{s1, 1}, {s2, 0}});
  d.connect({kPrimaryIn, 2}, {{m1, 1}, {m2, 1}});
  d.connect({s1, 0}, {{m1, 0}});
  d.connect({s2, 0}, {{m2, 0}});
  d.connect({m1, 0}, {{kPrimaryOut, 0}});
  d.connect({m2, 0}, {{kPrimaryOut, 1}});
  d.validate();
  const Dfg out = eliminate_common_subexpressions(d);
  EXPECT_EQ(out.num_operation_nodes(), 2);  // one add, one mult
  const Trace in = make_trace(3, 12, 5);
  EXPECT_EQ(eval_dfg(d, nullptr, in), eval_dfg(out, nullptr, in));
}

TEST(Transform, SubtractionIsNotCommutativelyMerged) {
  Dfg d("noncomm", 2, 2);
  const int s1 = d.add_node(Op::Sub);
  const int s2 = d.add_node(Op::Sub);
  d.connect({kPrimaryIn, 0}, {{s1, 0}, {s2, 1}});
  d.connect({kPrimaryIn, 1}, {{s1, 1}, {s2, 0}});
  d.connect({s1, 0}, {{kPrimaryOut, 0}});
  d.connect({s2, 0}, {{kPrimaryOut, 1}});
  d.validate();
  const Dfg out = eliminate_common_subexpressions(d);
  EXPECT_EQ(out.num_operation_nodes(), 2);  // a-b != b-a
}

TEST(Transform, ReshapeChainToBalancedCutsDepth) {
  // An 8-term addition chain becomes a depth-3 tree.
  Dfg d("chain8", 8, 1);
  int acc = -1;
  std::vector<int> nodes;
  for (int i = 0; i < 7; ++i) {
    const int n = d.add_node(Op::Add);
    if (i == 0) {
      d.connect({kPrimaryIn, 0}, {{n, 0}});
      d.connect({kPrimaryIn, 1}, {{n, 1}});
    } else {
      d.connect({acc, 0}, {{n, 0}});
      d.connect({kPrimaryIn, i + 1}, {{n, 1}});
    }
    acc = n;
    nodes.push_back(n);
  }
  d.connect({acc, 0}, {{kPrimaryOut, 0}});
  d.validate();
  EXPECT_EQ(critical_path(d, unit_latency()), 7);

  const Dfg bal = reshape_reductions(d, TreeShape::Balanced);
  EXPECT_EQ(bal.num_operation_nodes(), 7);
  EXPECT_EQ(critical_path(bal, unit_latency()), 3);
  const Trace in = make_trace(8, 16, 7);
  EXPECT_EQ(eval_dfg(d, nullptr, in), eval_dfg(bal, nullptr, in));

  const Dfg chain = reshape_reductions(bal, TreeShape::Chain);
  EXPECT_EQ(critical_path(chain, unit_latency()), 7);
  EXPECT_EQ(eval_dfg(d, nullptr, in), eval_dfg(chain, nullptr, in));
}

TEST(Transform, ReshapeLeavesSharedIntermediatesAlone) {
  // t = a+b feeds two consumers: it is not tree-interior and must stay.
  Dfg d("shared", 3, 2);
  const int t = d.add_node(Op::Add);
  const int u = d.add_node(Op::Add);
  d.connect({kPrimaryIn, 0}, {{t, 0}});
  d.connect({kPrimaryIn, 1}, {{t, 1}});
  d.connect({kPrimaryIn, 2}, {{u, 1}});
  d.connect({t, 0}, {{u, 0}, {kPrimaryOut, 1}});
  d.connect({u, 0}, {{kPrimaryOut, 0}});
  d.validate();
  const Dfg out = reshape_reductions(d, TreeShape::Balanced);
  EXPECT_EQ(out.num_operation_nodes(), 2);
  const Trace in = make_trace(3, 8, 9);
  EXPECT_EQ(eval_dfg(d, nullptr, in), eval_dfg(out, nullptr, in));
}

TEST(Transform, PassThroughOutputsSurviveReshape) {
  const Dfg sos = make_sos();  // has x -> x1' pass-throughs
  const Dfg out = reshape_reductions(sos, TreeShape::Chain);
  const Trace in = make_trace(sos.num_inputs(), 8, 11);
  EXPECT_EQ(eval_dfg(sos, nullptr, in), eval_dfg(out, nullptr, in));
}

class TransformSemantics : public ::testing::TestWithParam<int> {};

/// Property: every transformation preserves evaluation on random DFGs.
TEST_P(TransformSemantics, RandomDfgsUnchanged) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam()) + 3000;
  const Dfg d = random_dfg(seed, 14);
  const Trace in = make_trace(d.num_inputs(), 12, seed + 1);
  const auto want = eval_dfg(d, nullptr, in);

  EXPECT_EQ(eval_dfg(eliminate_dead_nodes(d), nullptr, in), want);
  EXPECT_EQ(eval_dfg(eliminate_common_subexpressions(d), nullptr, in), want);
  EXPECT_EQ(eval_dfg(reshape_reductions(d, TreeShape::Balanced), nullptr, in),
            want);
  EXPECT_EQ(eval_dfg(reshape_reductions(d, TreeShape::Chain), nullptr, in),
            want);
  for (const Dfg& v : generate_variants(d)) {
    EXPECT_EQ(eval_dfg(v, nullptr, in), want) << v.name();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TransformSemantics, ::testing::Range(0, 20));

TEST(Transform, RegisterVariantsFeedsMoveA) {
  const Library lib = default_library();
  Design design;
  design.add_behavior(make_dot4("dot"));  // balanced tree dot product
  using dfg_ns = Dfg;
  (void)sizeof(dfg_ns);
  Dfg top("vtop", 8, 1);
  const int h = top.add_hier_node("dot", 8, 1);
  for (int i = 0; i < 8; ++i) top.connect({kPrimaryIn, i}, {{h, i}});
  top.connect({h, 0}, {{kPrimaryOut, 0}});
  top.validate();
  design.add_behavior(std::move(top));
  design.set_top("vtop");
  design.validate();

  const int added = register_variants(design, "dot");
  EXPECT_GE(added, 1);  // at least the chain variant differs
  EXPECT_GE(design.equivalents("dot").size(), 2u);
  design.validate();

  // The enriched design synthesizes and can pick a variant.
  const double ts = 2.5 * min_sample_period_ns(design, lib);
  SynthOptions opts;
  opts.max_passes = 3;
  const SynthResult r =
      synthesize(design, lib, nullptr, ts, Objective::Area, Mode::Hierarchical,
                 opts);
  ASSERT_TRUE(r.ok) << r.fail_reason;
}

TEST(Transform, IdempotentOnAlreadyOptimalGraphs) {
  const Dfg bf = make_butterfly();
  const Dfg out = eliminate_common_subexpressions(eliminate_dead_nodes(bf));
  EXPECT_EQ(out.nodes().size(), bf.nodes().size());
  EXPECT_TRUE(generate_variants(bf).empty());  // nothing to reshape
}

}  // namespace
}  // namespace hsyn
