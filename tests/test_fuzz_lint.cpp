// Fuzz harness: 500 seeded random DFGs (plus the deep-hierarchy
// benchmarks) through the full lint registry and the dataflow engine.
// Valid graphs must never crash a pass and must never produce lint
// *errors* -- warnings are legitimate (a random graph happily builds
// Sub(e, e), which dfg-const-fold correctly flags).
#include <gtest/gtest.h>

#include "benchmarks/benchmarks.h"
#include "check/check.h"
#include "check/dataflow.h"
#include "check/equiv.h"
#include "dfg/design.h"
#include "power/trace.h"
#include "random_dfg.h"

namespace hsyn {
namespace {

TEST(FuzzLint, FiveHundredRandomDfgsLintWithoutErrors) {
  for (std::uint64_t seed = 1; seed <= 500; ++seed) {
    const Dfg d = testing_support::random_dfg(seed, 3 + seed % 24);
    lint::CheckContext cx;
    cx.dfg = &d;
    const lint::Report rep = lint::CheckEngine::instance().run(cx);
    EXPECT_EQ(rep.errors(), 0)
        << "seed " << seed << ":\n" << rep.to_text();
  }
}

TEST(FuzzLint, RandomDfgsAnalyzeUnderTraceSeeding) {
  // Trace-seeded analysis must hold the same no-crash/no-error bar and
  // produce in-bounds ranges for every edge.
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    const Dfg d = testing_support::random_dfg(seed * 7 + 1, 4 + seed % 16);
    const Trace t = make_trace(d.num_inputs(), 8, seed);
    const lint::DataflowFacts f = lint::analyze_dfg_scratch(d, nullptr, &t);
    ASSERT_EQ(f.edges.size(), d.edges().size());
    for (const lint::EdgeFact& e : f.edges) {
      EXPECT_LE(e.range.lo, e.range.hi);
      EXPECT_GE(e.range.lo, -32768);
      EXPECT_LE(e.range.hi, 32767);
      EXPECT_EQ(e.bits.zeros & e.bits.ones, 0)  // masks stay disjoint
          << "seed " << seed;
    }
  }
}

TEST(FuzzLint, DeepHierarchyDesignsLintClean) {
  const Library lib = default_library();
  for (const std::string& name : benchmark_names()) {
    const Benchmark b = make_benchmark(name, lib);
    const lint::Report rep = lint::lint_design(b.design);
    EXPECT_EQ(rep.errors(), 0) << name << ":\n" << rep.to_text();
    EXPECT_EQ(rep.warnings(), 0) << name << ":\n" << rep.to_text();
  }
}

TEST(FuzzLint, DeepHierarchyTraceSeededLintStaysClean) {
  // dct2d is the depth-2 benchmark; seed its lint with a typical trace
  // (the hsyn-lint --trace path) and require the same clean result.
  const Library lib = default_library();
  const Benchmark b = make_benchmark("dct2d", lib);
  const Trace t = make_trace(b.design.top().num_inputs(), 16, 11);
  const lint::Report rep = lint::lint_design(b.design, &t);
  EXPECT_EQ(rep.errors(), 0) << rep.to_text();
}

TEST(FuzzLint, RandomPairsNeverFalselyRefuted) {
  // Structurally different but behavior-identical graphs: a graph and
  // itself rebuilt from scratch (fresh ids). The validator must accept.
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    const Dfg a = testing_support::random_dfg(seed, 5 + seed % 10);
    const Dfg b = testing_support::random_dfg(seed, 5 + seed % 10);
    const Trace t = make_trace(a.num_inputs(), 8, seed ^ 0xABCD);
    const lint::EquivResult r = lint::verify_equivalent(a, b, t);
    EXPECT_TRUE(r.equivalent) << "seed " << seed << ": " << r.detail;
  }
}

}  // namespace
}  // namespace hsyn
