// Dataflow framework (check/dataflow.h): known-bits and range transfer
// functions, liveness, trace seeding, eval-cache sharing, and the
// soundness contract against the concrete replay evaluator.
#include <gtest/gtest.h>

#include "check/check.h"
#include "check/dataflow.h"
#include "dfg/design.h"
#include "dfg/dfg.h"
#include "power/trace.h"
#include "random_dfg.h"

namespace hsyn {
namespace {

using lint::DataflowFacts;
using lint::EdgeFact;
using lint::KnownBits;

// out = (a + b) * c
Dfg simple_dfg() {
  Dfg d("simple", 3, 1);
  const int add = d.add_node(Op::Add);
  const int mul = d.add_node(Op::Mult);
  d.connect({kPrimaryIn, 0}, {{add, 0}});
  d.connect({kPrimaryIn, 1}, {{add, 1}});
  d.connect({kPrimaryIn, 2}, {{mul, 1}});
  d.connect({add, 0}, {{mul, 0}});
  d.connect({mul, 0}, {{kPrimaryOut, 0}});
  d.validate();
  return d;
}

/// Trace where every input channel holds one constant value.
Trace constant_trace(std::vector<std::int32_t> channels, int samples = 4) {
  Trace t;
  for (int s = 0; s < samples; ++s) t.emplace_back(channels);
  return t;
}

TEST(Dataflow, UnconstrainedInputsYieldFullFacts) {
  const Dfg d = simple_dfg();
  const DataflowFacts f = lint::analyze_dfg_scratch(d, nullptr);
  ASSERT_EQ(f.edges.size(), d.edges().size());
  EXPECT_FALSE(f.incomplete);
  for (const EdgeFact& e : f.edges) {
    EXPECT_TRUE(e.range.is_full());
    EXPECT_EQ(e.bits.known(), 0u);
    EXPECT_TRUE(e.live);
  }
}

TEST(Dataflow, ConstantTraceFoldsTheWholeGraph) {
  const Dfg d = simple_dfg();
  const Trace t = constant_trace({3, 5, 7});
  const DataflowFacts f = lint::analyze_dfg_scratch(d, nullptr, &t);
  const EdgeFact& out = f.edges[static_cast<std::size_t>(
      d.primary_output_edge(0))];
  ASSERT_TRUE(out.is_constant());
  EXPECT_EQ(out.constant(), (3 + 5) * 7);
  EXPECT_EQ(out.range.lo, (3 + 5) * 7);
  EXPECT_EQ(out.range.hi, (3 + 5) * 7);
}

TEST(Dataflow, ConstantsWrapLikeTheEvaluator) {
  // 30000 + 30000 wraps in the 16-bit datapath word.
  Dfg d("wrap", 2, 1);
  const int add = d.add_node(Op::Add);
  d.connect({kPrimaryIn, 0}, {{add, 0}});
  d.connect({kPrimaryIn, 1}, {{add, 1}});
  d.connect({add, 0}, {{kPrimaryOut, 0}});
  d.validate();
  const Trace t = constant_trace({30000, 30000});
  const DataflowFacts f = lint::analyze_dfg_scratch(d, nullptr, &t);
  const EdgeFact& out = f.edges[static_cast<std::size_t>(
      d.primary_output_edge(0))];
  ASSERT_TRUE(out.is_constant());
  EXPECT_EQ(out.constant(), mask16(60000));
}

TEST(Dataflow, RangesTightenWithoutConstants) {
  // Inputs in [0, 10] and [1, 3]: sum in [1, 13], Cmp output in [0, 1].
  Dfg d("ranges", 2, 2);
  const int add = d.add_node(Op::Add);
  const int cmp = d.add_node(Op::Cmp);
  d.connect({kPrimaryIn, 0}, {{add, 0}, {cmp, 0}});
  d.connect({kPrimaryIn, 1}, {{add, 1}, {cmp, 1}});
  d.connect({add, 0}, {{kPrimaryOut, 0}});
  d.connect({cmp, 0}, {{kPrimaryOut, 1}});
  d.validate();
  Trace t;
  for (int s = 0; s <= 10; ++s) t.push_back({s, 1 + (s % 3)});
  const DataflowFacts f = lint::analyze_dfg_scratch(d, nullptr, &t);
  const EdgeFact& sum = f.edges[static_cast<std::size_t>(
      d.primary_output_edge(0))];
  EXPECT_EQ(sum.range.lo, 1);
  EXPECT_EQ(sum.range.hi, 13);
  const EdgeFact& flag = f.edges[static_cast<std::size_t>(
      d.primary_output_edge(1))];
  EXPECT_GE(flag.range.lo, 0);
  EXPECT_LE(flag.range.hi, 1);
  // 0/1 output: the top 15 bits are provably zero.
  EXPECT_GE(flag.bits.num_known(), 15);
}

TEST(Dataflow, SubOfSameEdgeIsZero) {
  Dfg d("sub0", 1, 1);
  const int sub = d.add_node(Op::Sub);
  d.connect({kPrimaryIn, 0}, {{sub, 0}, {sub, 1}});
  d.connect({sub, 0}, {{kPrimaryOut, 0}});
  d.validate();
  const DataflowFacts f = lint::analyze_dfg_scratch(d, nullptr);
  const EdgeFact& out = f.edges[static_cast<std::size_t>(
      d.primary_output_edge(0))];
  ASSERT_TRUE(out.is_constant());
  EXPECT_EQ(out.constant(), 0);
}

TEST(Dataflow, DeadNodeAndDeadInputAreNotLive) {
  // add feeds the output; mul consumes both inputs but feeds nothing.
  Dfg d("deadish", 2, 1);
  const int add = d.add_node(Op::Add);
  const int mul = d.add_node(Op::Mult);
  d.connect({kPrimaryIn, 0}, {{add, 0}, {mul, 0}});
  d.connect({kPrimaryIn, 1}, {{add, 1}, {mul, 1}});
  d.connect({add, 0}, {{kPrimaryOut, 0}});
  d.connect({mul, 0}, {});
  d.validate();
  const DataflowFacts f = lint::analyze_dfg_scratch(d, nullptr);
  EXPECT_TRUE(f.node_live[static_cast<std::size_t>(add)]);
  EXPECT_FALSE(f.node_live[static_cast<std::size_t>(mul)]);
  // Both inputs still reach the output through the adder.
  EXPECT_TRUE(f.input_live[0]);
  EXPECT_TRUE(f.input_live[1]);
  EXPECT_FALSE(f.edges[static_cast<std::size_t>(d.output_edge(mul, 0))].live);
}

TEST(Dataflow, CachedAnalysisIsShared) {
  const Dfg d = simple_dfg();
  const auto a = lint::analyze_dfg(d);
  const auto b = lint::analyze_dfg(d);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a.get(), b.get());  // second call is a cache hit
  EXPECT_EQ(a->dfg_hash, d.content_hash());
  // A trace-seeded query is a distinct cache entry.
  const Trace t = constant_trace({1, 2, 3});
  const auto c = lint::analyze_dfg(d, nullptr, t);
  ASSERT_NE(c, nullptr);
  EXPECT_NE(a.get(), c.get());
}

TEST(Dataflow, HierChildSummaryResolvesThroughResolver) {
  // child: out = a - a (constant 0 for any input).
  Dfg child("zero", 1, 1);
  const int sub = child.add_node(Op::Sub);
  child.connect({kPrimaryIn, 0}, {{sub, 0}, {sub, 1}});
  child.connect({sub, 0}, {{kPrimaryOut, 0}});
  child.validate();
  Dfg top("calls", 1, 1);
  const int h = top.add_hier_node("zero", 1, 1);
  top.connect({kPrimaryIn, 0}, {{h, 0}});
  top.connect({h, 0}, {{kPrimaryOut, 0}});
  top.validate();
  const BehaviorResolver res = [&](const std::string& n) -> const Dfg* {
    return n == "zero" ? &child : nullptr;
  };
  const DataflowFacts f = lint::analyze_dfg_scratch(top, res);
  EXPECT_FALSE(f.incomplete);
  const lint::EdgeFact& out = f.edges[static_cast<std::size_t>(
      top.primary_output_edge(0))];
  ASSERT_TRUE(out.is_constant());
  EXPECT_EQ(out.constant(), 0);
  // Without a resolver the child degrades to unconstrained facts.
  const DataflowFacts g = lint::analyze_dfg_scratch(top, nullptr);
  EXPECT_TRUE(g.incomplete);
  EXPECT_TRUE(g.edges[static_cast<std::size_t>(top.primary_output_edge(0))]
                  .range.is_full());
}

// The soundness contract: for every sample of a stimulus, every concrete
// edge value lies inside the abstract fact computed with the stimulus as
// the input seed.
TEST(Dataflow, FactsContainReplayValuesOnRandomDfgs) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    const Dfg d = testing_support::random_dfg(seed, 4 + seed % 12);
    const Trace t = make_trace(d.num_inputs(), 16, seed * 977 + 5);
    const DataflowFacts f = lint::analyze_dfg_scratch(d, nullptr, &t);
    const auto samples = eval_dfg_edges(d, nullptr, t);  // [sample][edge]
    for (const auto& row : samples) {
      ASSERT_EQ(row.size(), f.edges.size());
      for (std::size_t e = 0; e < row.size(); ++e) {
        const EdgeFact& fact = f.edges[e];
        const std::int32_t v = row[e];
        ASSERT_TRUE(fact.range.contains(v))
            << "seed " << seed << " edge " << e << ": value " << v
            << " outside [" << fact.range.lo << ", " << fact.range.hi << "]";
        const auto u = static_cast<std::uint16_t>(v & 0xFFFF);
        ASSERT_EQ(u & fact.bits.zeros, 0)
            << "seed " << seed << " edge " << e << ": provably-zero bit set";
        ASSERT_EQ(static_cast<std::uint16_t>(~u) & fact.bits.ones, 0)
            << "seed " << seed << " edge " << e << ": provably-one bit clear";
      }
    }
  }
}

TEST(KnownBitsUnit, ConstantRoundTrips) {
  const KnownBits k = KnownBits::constant(-5);
  EXPECT_TRUE(k.all_known());
  EXPECT_EQ(mask16(k.ones), -5);
  EXPECT_EQ(KnownBits::top().known(), 0u);
}

}  // namespace
}  // namespace hsyn
