// Tests for the deterministic parallel runtime (src/runtime/): the
// ordered reduction must select the same element for every thread
// count, per-task RNG streams must be pure functions of (seed, index),
// worker exceptions must propagate to the caller, and a full synthesis
// run must be bit-identical serial vs. parallel.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "benchmarks/benchmarks.h"
#include "library/library.h"
#include "random_dfg.h"
#include "rtl/netlist.h"
#include "runtime/parallel.h"
#include "runtime/stats.h"
#include "runtime/task_rng.h"
#include "runtime/thread_pool.h"
#include "synth/synthesizer.h"

namespace hsyn {
namespace {

using testing_support::random_dfg;

/// A stand-in for synth::Move in reduction tests: candidate index plus
/// a score, selected by strictly-greater comparison (first-wins ties).
struct Scored {
  int idx = -1;
  double gain = 0;
  bool valid = false;
};

void keep_scored(Scored& best, Scored&& cand) {
  if (!cand.valid) return;
  if (!best.valid || cand.gain > best.gain) best = std::move(cand);
}

/// Deterministic per-candidate score over a random DFG: node structure
/// plus a few draws from the candidate's private RNG stream. Quantized
/// so that ties are common and first-wins tie-breaking is exercised.
Scored score_candidate(const Dfg& d, std::uint64_t seed, int i) {
  Rng rng = runtime::task_rng(seed, static_cast<std::uint64_t>(i));
  const Node& n = d.node(i % static_cast<int>(d.nodes().size()));
  double g = static_cast<double>(static_cast<int>(n.op)) +
             static_cast<double>(rng.below(8)) + 0.25 * (i % 4);
  if (rng.below(5) == 0) return {};  // some candidates are invalid
  return {i, std::floor(g), true};
}

class ParallelBestDeterminism : public ::testing::TestWithParam<int> {};

TEST_P(ParallelBestDeterminism, SameWinnerForAnyThreadCount) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  const Dfg d = random_dfg(seed, 24);
  const int n = 97;  // not a multiple of any chunk count

  // Serial reference: the exact fold parallel_best promises.
  Scored ref;
  for (int i = 0; i < n; ++i) keep_scored(ref, score_candidate(d, seed, i));
  ASSERT_TRUE(ref.valid);

  for (const int threads : {1, 2, 8}) {
    runtime::set_threads(threads);
    const Scored got = runtime::parallel_best(
        n, Scored{}, [&](int i) { return score_candidate(d, seed, i); },
        keep_scored);
    EXPECT_EQ(ref.idx, got.idx) << "threads=" << threads;
    EXPECT_EQ(ref.gain, got.gain) << "threads=" << threads;
    EXPECT_EQ(ref.valid, got.valid) << "threads=" << threads;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelBestDeterminism,
                         ::testing::Range(1, 13));

TEST(ParallelMap, IndexOrderIndependentOfThreadCount) {
  const int n = 61;
  std::vector<std::uint64_t> ref;
  for (const int threads : {1, 2, 8}) {
    runtime::set_threads(threads);
    const std::vector<std::uint64_t> got = runtime::parallel_map(n, [](int i) {
      Rng rng = runtime::task_rng(7, static_cast<std::uint64_t>(i));
      std::uint64_t h = 0;
      for (int k = 0; k < 3; ++k) h ^= rng.next();
      return h;
    });
    ASSERT_EQ(got.size(), static_cast<std::size_t>(n));
    if (ref.empty()) {
      ref = got;
    } else {
      EXPECT_EQ(ref, got) << "threads=" << threads;
    }
  }
}

TEST(TaskRng, StreamsAreReproducibleAndDecorrelated) {
  // Same (seed, index) -> identical stream.
  Rng a = runtime::task_rng(42, 5);
  Rng b = runtime::task_rng(42, 5);
  for (int k = 0; k < 16; ++k) EXPECT_EQ(a.next(), b.next());

  // Neighboring indices and neighboring seeds give distinct streams.
  EXPECT_NE(runtime::task_rng(42, 5).next(), runtime::task_rng(42, 6).next());
  EXPECT_NE(runtime::task_rng(42, 5).next(), runtime::task_rng(43, 5).next());
  // Index 0 is a valid stream too (the +1 offset keeps it off the seed).
  EXPECT_NE(runtime::task_rng(42, 0).next(), Rng(42).next());
}

TEST(ThreadPool, WorkerExceptionsPropagateLowestChunkFirst) {
  runtime::set_threads(8);
  // 64 indices over 8 chunks of 8: chunk 0 is clean, chunk 1 throws
  // first at i == 10 -- that exception must be the one rethrown.
  try {
    runtime::parallel_for(64, [](int i) {
      if (i >= 10) throw std::runtime_error("boom " + std::to_string(i));
    });
    FAIL() << "expected the worker exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ("boom 10", e.what());
  }

  // The pool must stay usable after a throwing region.
  std::vector<int> out(32, 0);
  runtime::parallel_for(32, [&](int i) { out[static_cast<std::size_t>(i)] = i; });
  for (int i = 0; i < 32; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], i);
}

TEST(RuntimeStats, CountsTasksAndRegions) {
  runtime::set_threads(4);
  runtime::reset_stats();
  runtime::parallel_for(100, [](int) {});
  {
    runtime::ScopedPhase phase("test-phase");
  }
  const runtime::Stats s = runtime::stats_snapshot();
  EXPECT_EQ(s.tasks, 100u);
  EXPECT_GE(s.regions + s.inline_regions, 1u);
  EXPECT_GE(s.max_region_chunks, 1u);
  EXPECT_TRUE(s.phase_seconds.count("test-phase"));
  EXPECT_FALSE(s.to_string().empty());
}

TEST(Synthesis, BitIdenticalAcrossThreadCounts) {
  const Library lib = default_library();
  const Benchmark bench = make_benchmark("test1", lib);
  const double ts = 2.2 * min_sample_period_ns(bench.design, lib);

  runtime::set_threads(1);
  const SynthResult serial =
      synthesize(bench.design, lib, &bench.clib, ts, Objective::Power,
                 Mode::Hierarchical);
  ASSERT_TRUE(serial.ok) << serial.fail_reason;

  runtime::set_threads(8);
  const SynthResult parallel =
      synthesize(bench.design, lib, &bench.clib, ts, Objective::Power,
                 Mode::Hierarchical);
  ASSERT_TRUE(parallel.ok) << parallel.fail_reason;

  // Bit-identical, not approximately equal: same architecture, same
  // schedule, same energy/area doubles.
  EXPECT_EQ(serial.area, parallel.area);
  EXPECT_EQ(serial.energy, parallel.energy);
  EXPECT_EQ(serial.makespan, parallel.makespan);
  EXPECT_EQ(serial.stats.moves_applied, parallel.stats.moves_applied);
  EXPECT_EQ(serial.stats.moves_kept, parallel.stats.moves_kept);
  EXPECT_EQ(netlist_to_text(serial.dp, lib), netlist_to_text(parallel.dp, lib));
}

// Regression for the explicit (cost, index) comparator: equal-cost
// candidates must always resolve to the lowest index, at every thread
// count, no matter how the reduction tree groups the chunks. A bare
// "keep when strictly better" fold gets this right only by accident of
// visit order.
TEST(ParallelBestIndexed, EqualCostBreaksTowardLowestIndex) {
  constexpr int kN = 97;
  for (const int threads : {1, 2, 3, 8}) {
    runtime::set_threads(threads);

    // All candidates tie: index 0 must win.
    runtime::Scored<int> all_tied = runtime::parallel_best_indexed(
        kN, [](int i) { return runtime::Scored<int>{5.0, -1, i * 10}; });
    EXPECT_EQ(all_tied.index, 0) << "threads=" << threads;
    EXPECT_EQ(all_tied.value, 0) << "threads=" << threads;

    // A tie at the minimum deep inside the range: the lowest tied index
    // wins, not whichever chunk reduced last.
    runtime::Scored<int> deep_tie = runtime::parallel_best_indexed(
        kN, [](int i) {
          const double cost = (i == 23 || i == 71) ? 1.0 : 2.0 + i;
          return runtime::Scored<int>{cost, -1, i};
        });
    EXPECT_EQ(deep_tie.index, 23) << "threads=" << threads;
    EXPECT_DOUBLE_EQ(deep_tie.cost, 1.0) << "threads=" << threads;

    // Strictly lower cost still beats any index.
    runtime::Scored<int> strict = runtime::parallel_best_indexed(
        kN, [](int i) {
          return runtime::Scored<int>{i == kN - 1 ? 0.5 : 1.0, -1, i};
        });
    EXPECT_EQ(strict.index, kN - 1) << "threads=" << threads;
  }
  runtime::set_threads(0);
}

TEST(ParallelBestIndexed, CombinerIsAssociativeWithEmptyIdentity) {
  using S = runtime::Scored<int>;
  S empty;
  S a{3.0, 4, 40};
  S b{3.0, 2, 20};
  EXPECT_FALSE(runtime::scored_better(a, empty));
  EXPECT_TRUE(runtime::scored_better(empty, a));
  EXPECT_TRUE(runtime::scored_better(a, b));   // equal cost, lower index
  EXPECT_FALSE(runtime::scored_better(b, a));

  // (empty ⊕ a) ⊕ b == empty ⊕ (a ⊕ b)
  S left = empty;
  runtime::keep_scored(left, S(a));
  runtime::keep_scored(left, S(b));
  S inner = a;
  runtime::keep_scored(inner, S(b));
  S right = empty;
  runtime::keep_scored(right, std::move(inner));
  EXPECT_EQ(left.index, right.index);
  EXPECT_EQ(left.value, right.value);
  EXPECT_EQ(left.index, 2);
}

}  // namespace
}  // namespace hsyn
