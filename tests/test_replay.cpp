// The compiled trace-replay kernel (power/replay.h): program compilation,
// packed toggle counting, and -- the load-bearing property -- bit
// identity between the compiled kernel and the reference interpreter on
// every bundled benchmark, at every thread count, through the full
// synthesis flow.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "benchmarks/benchmarks.h"
#include "eval/engine.h"
#include "power/estimator.h"
#include "power/replay.h"
#include "power/trace.h"
#include "random_dfg.h"
#include "runtime/arena.h"
#include "runtime/thread_pool.h"
#include "synth/report.h"
#include "synth/synthesizer.h"
#include "util/rng.h"

namespace hsyn {
namespace {

/// Behavior resolver backed by a Design.
BehaviorResolver design_resolver(const Design& d) {
  return [&d](const std::string& name) -> const Dfg* {
    return d.has_behavior(name) ? &d.behavior(name) : nullptr;
  };
}

const BehaviorResolver kNoHier = [](const std::string&) -> const Dfg* {
  return nullptr;
};

/// Sets the replay mode for one scope; restores the previous mode and
/// drops the shared eval cache on both transitions (both backends store
/// results under the same key, so a stale cache would mask divergence).
class ReplayModeScope {
 public:
  explicit ReplayModeScope(ReplayMode m) : prev_(replay_mode()) {
    eval::EvalEngine::instance().clear();
    set_replay_mode(m);
  }
  ~ReplayModeScope() {
    eval::EvalEngine::instance().clear();
    set_replay_mode(prev_);
  }

 private:
  ReplayMode prev_;
};

/// Edge matrix of `dfg` computed fresh (cache dropped first) under `m`.
EdgeMatrix matrix_under(ReplayMode m, const Dfg& dfg,
                        const BehaviorResolver& res, const Trace& tr) {
  ReplayModeScope scope(m);
  return *eval_dfg_edges_shared(dfg, res, tr);
}

// ---- Packed toggle counting ---------------------------------------------

int scalar_toggles(const std::vector<std::int32_t>& v) {
  int total = 0;
  for (std::size_t t = 1; t < v.size(); ++t) {
    total += hamming16(v[t - 1], v[t]);
  }
  return total;
}

TEST(PackedToggles, MatchesScalarHamming) {
  Rng rng(7);
  for (const std::size_t n : {0u, 1u, 2u, 3u, 4u, 5u, 7u, 8u, 9u, 31u, 64u,
                              100u, 257u}) {
    std::vector<std::int32_t> v(n);
    for (auto& x : v) x = mask16(static_cast<std::int64_t>(rng.next()));
    EXPECT_EQ(toggle_count(v.data(), v.size()), scalar_toggles(v))
        << "length " << n;
  }
}

TEST(PackedToggles, ShortStreamsAreZero) {
  const std::int32_t one = 0x5A5A & 0xFFFF;
  EXPECT_EQ(toggle_count(nullptr, 0), 0);
  EXPECT_EQ(toggle_count(&one, 1), 0);
}

TEST(PackedHammingTuple, MatchesScalarWithZeroPadding) {
  Rng rng(11);
  for (const std::size_t na : {0u, 1u, 2u, 3u, 4u, 5u, 9u}) {
    for (const std::size_t nb : {0u, 1u, 2u, 3u, 4u, 5u, 9u}) {
      std::vector<std::int32_t> a(na), b(nb);
      for (auto& x : a) x = mask16(static_cast<std::int64_t>(rng.next()));
      for (auto& x : b) x = mask16(static_cast<std::int64_t>(rng.next()));
      int want = 0;
      for (std::size_t i = 0; i < std::max(na, nb); ++i) {
        want += hamming16(i < na ? a[i] : 0, i < nb ? b[i] : 0);
      }
      EXPECT_EQ(hamming_tuple(a.data(), na, b.data(), nb), want)
          << na << " vs " << nb;
    }
  }
}

// ---- Program compilation ------------------------------------------------

TEST(ReplayProgramTest, CompilesBinaryDfg) {
  Dfg d("g", 2, 1);
  const int a = d.connect({kPrimaryIn, 0}, {});
  const int b = d.connect({kPrimaryIn, 1}, {});
  const int n = d.add_node(Op::Add);
  d.add_consumer(a, {n, 0});
  d.add_consumer(b, {n, 1});
  d.connect({n, 0}, {{kPrimaryOut, 0}});
  d.validate();

  const ReplayProgram p = compile_replay(d);
  EXPECT_EQ(p.dfg_hash, d.content_hash());
  EXPECT_EQ(p.num_inputs, 2);
  EXPECT_EQ(p.num_outputs, 1);
  EXPECT_EQ(p.num_edges, 3);
  ASSERT_EQ(p.steps.size(), 1u);
  EXPECT_EQ(p.steps[0].op, Op::Add);
  EXPECT_TRUE(p.hier_calls.empty());
}

TEST(ReplayProgramTest, UnaryOpsShareOneConstantSlot) {
  // Two Neg nodes: both take the pooled constant 0 as their second
  // operand, and the pool must deduplicate it.
  Dfg d("g", 1, 2);
  const int a = d.connect({kPrimaryIn, 0}, {});
  const int n1 = d.add_node(Op::Neg);
  const int n2 = d.add_node(Op::Neg);
  d.add_consumer(a, {n1, 0});
  const int m = d.connect({n1, 0}, {{kPrimaryOut, 0}});
  d.add_consumer(m, {n2, 0});
  d.connect({n2, 0}, {{kPrimaryOut, 1}});
  d.validate();

  const ReplayProgram p = compile_replay(d);
  ASSERT_EQ(p.consts.size(), 1u);
  EXPECT_EQ(p.consts[0], 0);
  ASSERT_EQ(p.steps.size(), 2u);
  EXPECT_EQ(p.steps[0].b, p.num_edges);  // both read the pooled zero
  EXPECT_EQ(p.steps[1].b, p.num_edges);
}

TEST(ReplayProgramTest, MemoizedByContentHash) {
  const Dfg d1 = testing_support::random_dfg(3, 12);
  const Dfg d2 = testing_support::random_dfg(3, 12);  // same content
  const Dfg d3 = testing_support::random_dfg(4, 12);
  const auto p1 = replay_program_of(d1);
  const auto p2 = replay_program_of(d2);
  const auto p3 = replay_program_of(d3);
  EXPECT_EQ(p1.get(), p2.get());  // one compile per content hash
  EXPECT_NE(p1.get(), p3.get());
}

// ---- Kernel vs interpreter, small shapes --------------------------------

void expect_same_matrix(const Dfg& d, const BehaviorResolver& res,
                        const Trace& tr) {
  const EdgeMatrix compiled = matrix_under(ReplayMode::Compiled, d, res, tr);
  const EdgeMatrix interp = matrix_under(ReplayMode::Interp, d, res, tr);
  ASSERT_EQ(compiled.num_edges(), interp.num_edges());
  ASSERT_EQ(compiled.samples(), interp.samples());
  EXPECT_EQ(compiled, interp) << d.name();
}

TEST(ReplayEquivalence, PassThroughDfg) {
  Dfg d("wire", 1, 1);
  d.connect({kPrimaryIn, 0}, {{kPrimaryOut, 0}});
  d.validate();
  expect_same_matrix(d, kNoHier, make_trace(1, 9, 21));
}

TEST(ReplayEquivalence, UnaryNegDfg) {
  Dfg d("neg", 1, 1);
  const int a = d.connect({kPrimaryIn, 0}, {});
  const int n = d.add_node(Op::Neg);
  d.add_consumer(a, {n, 0});
  d.connect({n, 0}, {{kPrimaryOut, 0}});
  d.validate();
  const Trace tr = make_trace(1, 16, 22);
  expect_same_matrix(d, kNoHier, tr);
  const EdgeMatrix m = matrix_under(ReplayMode::Compiled, d, kNoHier, tr);
  for (std::size_t t = 0; t < tr.size(); ++t) {
    EXPECT_EQ(m.at(1, t), eval_op(Op::Neg, tr[t][0], 0));
  }
}

TEST(ReplayEquivalence, EmptyTrace) {
  const Dfg d = testing_support::random_dfg(5, 10);
  const EdgeMatrix m = matrix_under(ReplayMode::Compiled, d, kNoHier, Trace{});
  EXPECT_EQ(m.samples(), 0u);
  EXPECT_EQ(m.num_edges(), static_cast<int>(d.edges().size()));
  expect_same_matrix(d, kNoHier, Trace{});
}

TEST(ReplayEquivalence, SingleSampleTrace) {
  const Dfg d = testing_support::random_dfg(6, 10);
  expect_same_matrix(d, kNoHier, make_trace(d.num_inputs(), 1, 23));
}

TEST(ReplayEquivalence, RandomDfgs) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const Dfg d = testing_support::random_dfg(seed, 4 + 3 * static_cast<int>(seed));
    expect_same_matrix(d, kNoHier, make_trace(d.num_inputs(), 24, seed));
  }
}

// ---- Kernel vs interpreter, bundled benchmarks --------------------------

class ReplayBenchmarkEquivalence
    : public ::testing::TestWithParam<std::string> {};

TEST_P(ReplayBenchmarkEquivalence, TopBehaviorMatchesInterpreter) {
  const Library lib = default_library();
  const Benchmark bench = make_benchmark(GetParam(), lib);
  const Dfg& top = bench.design.top();
  const BehaviorResolver res = design_resolver(bench.design);
  expect_same_matrix(top, res, make_trace(top.num_inputs(), 32, 97));
}

TEST_P(ReplayBenchmarkEquivalence, CompiledIsThreadCountInvariant) {
  const Library lib = default_library();
  const Benchmark bench = make_benchmark(GetParam(), lib);
  const Dfg& top = bench.design.top();
  const BehaviorResolver res = design_resolver(bench.design);
  const Trace tr = make_trace(top.num_inputs(), 33, 98);  // odd: ragged chunks
  const int before = runtime::threads();
  runtime::set_threads(1);
  const EdgeMatrix m1 = matrix_under(ReplayMode::Compiled, top, res, tr);
  runtime::set_threads(2);
  const EdgeMatrix m2 = matrix_under(ReplayMode::Compiled, top, res, tr);
  runtime::set_threads(8);
  const EdgeMatrix m8 = matrix_under(ReplayMode::Compiled, top, res, tr);
  runtime::set_threads(before);
  EXPECT_EQ(m1, m2);
  EXPECT_EQ(m1, m8);
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, ReplayBenchmarkEquivalence,
                         ::testing::Values("avenhaus_cascade", "lat", "dct",
                                           "iir", "hier_paulin", "test1",
                                           "fir16", "dct2d"));

// ---- Full synthesis bit-identity ----------------------------------------

SynthOptions quick_opts() {
  SynthOptions o;
  o.max_passes = 2;
  o.max_moves_per_pass = 6;
  o.max_candidates = 8;
  o.trace_samples = 16;
  o.max_clocks = 2;
  return o;
}

struct SynthSnapshot {
  double area = 0, energy = 0, power = 0;
  int makespan = 0, deadline = 0;
  double vdd = 0, clk = 0;
  std::string summary;  // report text minus the wall-clock line

  friend bool operator==(const SynthSnapshot&, const SynthSnapshot&) = default;
};

SynthSnapshot run_synthesis(ReplayMode mode, int threads) {
  ReplayModeScope scope(mode);
  const int before = runtime::threads();
  runtime::set_threads(threads);
  const Library lib = default_library();
  const Benchmark bench = make_benchmark("hier_paulin", lib);
  const double ts = 1.8 * min_sample_period_ns(bench.design, lib);
  const SynthResult r =
      synthesize(bench.design, lib, &bench.clib, ts, Objective::Power,
                 Mode::Hierarchical, quick_opts());
  runtime::set_threads(before);
  EXPECT_TRUE(r.ok) << r.fail_reason;
  SynthSnapshot s;
  s.area = r.area;
  s.energy = r.energy;
  s.power = r.power;
  s.makespan = r.makespan;
  s.deadline = r.deadline_cycles;
  s.vdd = r.pt.vdd;
  s.clk = r.pt.clk_ns;
  std::istringstream in(result_summary(r, lib));
  for (std::string line; std::getline(in, line);) {
    if (line.find("time") != std::string::npos) continue;  // wall clock
    s.summary += line;
    s.summary += '\n';
  }
  return s;
}

TEST(ReplaySynthesisIdentity, BitIdenticalAcrossModesAndThreadCounts) {
  const SynthSnapshot golden = run_synthesis(ReplayMode::Interp, 1);
  for (const ReplayMode mode : {ReplayMode::Compiled, ReplayMode::Interp}) {
    for (const int threads : {1, 2, 8}) {
      const SynthSnapshot got = run_synthesis(mode, threads);
      EXPECT_EQ(got, golden)
          << (mode == ReplayMode::Compiled ? "compiled" : "interp") << " @ "
          << threads << " threads";
    }
  }
}

// ---- Mode plumbing and arena --------------------------------------------

TEST(ReplayModeTest, ParseAcceptsOnlyKnownNames) {
  ReplayMode m;
  EXPECT_TRUE(parse_replay_mode("interp", &m));
  EXPECT_EQ(m, ReplayMode::Interp);
  EXPECT_TRUE(parse_replay_mode("compiled", &m));
  EXPECT_EQ(m, ReplayMode::Compiled);
  EXPECT_FALSE(parse_replay_mode("", &m));
  EXPECT_FALSE(parse_replay_mode("fast", &m));
  EXPECT_FALSE(parse_replay_mode("INTERP", &m));
}

TEST(ArenaTest, FramesNestAndReleaseInLifoOrder) {
  runtime::Arena& a = runtime::Arena::local();
  runtime::Arena::Frame outer(a);
  std::int32_t* x = a.alloc_i32(100);
  x[0] = 1;
  x[99] = 2;
  {
    runtime::Arena::Frame inner(a);
    std::int32_t* y = a.alloc_i32(1 << 16);
    y[0] = 3;
    y[(1 << 16) - 1] = 4;
  }
  // The outer allocation survives the inner frame.
  EXPECT_EQ(x[0], 1);
  EXPECT_EQ(x[99], 2);
  std::int32_t* z = a.alloc_i32(8);
  z[7] = 5;
  EXPECT_EQ(z[7], 5);
  EXPECT_GT(a.reserved(), 0u);
}

}  // namespace
}  // namespace hsyn
