// The compiled trace-replay kernel (power/replay.h): program compilation,
// packed toggle counting, and -- the load-bearing property -- bit
// identity between the compiled kernel and the reference interpreter on
// every bundled benchmark, at every thread count, through the full
// synthesis flow.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "benchmarks/benchmarks.h"
#include "eval/engine.h"
#include "obs/metrics.h"
#include "power/estimator.h"
#include "power/replay.h"
#include "power/replay_kernels.h"
#include "power/trace.h"
#include "random_dfg.h"
#include "runtime/arena.h"
#include "runtime/thread_pool.h"
#include "synth/report.h"
#include "synth/synthesizer.h"
#include "util/rng.h"

namespace hsyn {
namespace {

/// Behavior resolver backed by a Design.
BehaviorResolver design_resolver(const Design& d) {
  return [&d](const std::string& name) -> const Dfg* {
    return d.has_behavior(name) ? &d.behavior(name) : nullptr;
  };
}

const BehaviorResolver kNoHier = [](const std::string&) -> const Dfg* {
  return nullptr;
};

/// Sets the replay mode for one scope; restores the previous mode and
/// drops the shared eval cache on both transitions (both backends store
/// results under the same key, so a stale cache would mask divergence).
class ReplayModeScope {
 public:
  explicit ReplayModeScope(ReplayMode m) : prev_(replay_mode()) {
    eval::EvalEngine::instance().clear();
    set_replay_mode(m);
  }
  ~ReplayModeScope() {
    eval::EvalEngine::instance().clear();
    set_replay_mode(prev_);
  }

 private:
  ReplayMode prev_;
};

/// Edge matrix of `dfg` computed fresh (cache dropped first) under `m`.
EdgeMatrix matrix_under(ReplayMode m, const Dfg& dfg,
                        const BehaviorResolver& res, const Trace& tr) {
  ReplayModeScope scope(m);
  return *eval_dfg_edges_shared(dfg, res, tr);
}

/// Forces a kernel-table ISA for one scope; restores the previous
/// selection. The eval cache is dropped on both transitions so every
/// evaluation inside the scope actually runs the forced kernels (a warm
/// cache would serve bit-identical results without executing anything).
class ReplayIsaScope {
 public:
  explicit ReplayIsaScope(ReplayIsa isa) : prev_(replay_isa()) {
    eval::EvalEngine::instance().clear();
    set_replay_isa(isa);
  }
  ~ReplayIsaScope() {
    eval::EvalEngine::instance().clear();
    set_replay_isa(prev_);
  }

 private:
  ReplayIsa prev_;
};

/// Every concrete ISA selectable on this build + CPU (always includes
/// Scalar; Native is a resolution rule, not a table).
std::vector<ReplayIsa> available_isas() {
  std::vector<ReplayIsa> out;
  for (const ReplayIsa isa :
       {ReplayIsa::Scalar, ReplayIsa::Avx2, ReplayIsa::Neon}) {
    if (replay_isa_available(isa)) out.push_back(isa);
  }
  return out;
}

// ---- Packed toggle counting ---------------------------------------------

int scalar_toggles(const std::vector<std::int32_t>& v) {
  int total = 0;
  for (std::size_t t = 1; t < v.size(); ++t) {
    total += hamming16(v[t - 1], v[t]);
  }
  return total;
}

TEST(PackedToggles, MatchesScalarHamming) {
  Rng rng(7);
  for (const std::size_t n : {0u, 1u, 2u, 3u, 4u, 5u, 7u, 8u, 9u, 31u, 64u,
                              100u, 257u}) {
    std::vector<std::int32_t> v(n);
    for (auto& x : v) x = mask16(static_cast<std::int64_t>(rng.next()));
    EXPECT_EQ(toggle_count(v.data(), v.size()), scalar_toggles(v))
        << "length " << n;
  }
}

TEST(PackedToggles, ShortStreamsAreZero) {
  const std::int32_t one = 0x5A5A & 0xFFFF;
  EXPECT_EQ(toggle_count(nullptr, 0), 0);
  EXPECT_EQ(toggle_count(&one, 1), 0);
}

TEST(PackedHammingTuple, MatchesScalarWithZeroPadding) {
  Rng rng(11);
  for (const std::size_t na : {0u, 1u, 2u, 3u, 4u, 5u, 9u}) {
    for (const std::size_t nb : {0u, 1u, 2u, 3u, 4u, 5u, 9u}) {
      std::vector<std::int32_t> a(na), b(nb);
      for (auto& x : a) x = mask16(static_cast<std::int64_t>(rng.next()));
      for (auto& x : b) x = mask16(static_cast<std::int64_t>(rng.next()));
      int want = 0;
      for (std::size_t i = 0; i < std::max(na, nb); ++i) {
        want += hamming16(i < na ? a[i] : 0, i < nb ? b[i] : 0);
      }
      EXPECT_EQ(hamming_tuple(a.data(), na, b.data(), nb), want)
          << na << " vs " << nb;
    }
  }
}

// ---- Program compilation ------------------------------------------------

TEST(ReplayProgramTest, CompilesBinaryDfg) {
  Dfg d("g", 2, 1);
  const int a = d.connect({kPrimaryIn, 0}, {});
  const int b = d.connect({kPrimaryIn, 1}, {});
  const int n = d.add_node(Op::Add);
  d.add_consumer(a, {n, 0});
  d.add_consumer(b, {n, 1});
  d.connect({n, 0}, {{kPrimaryOut, 0}});
  d.validate();

  const ReplayProgram p = compile_replay(d);
  EXPECT_EQ(p.dfg_hash, d.content_hash());
  EXPECT_EQ(p.num_inputs, 2);
  EXPECT_EQ(p.num_outputs, 1);
  EXPECT_EQ(p.num_edges, 3);
  ASSERT_EQ(p.steps.size(), 1u);
  EXPECT_EQ(p.steps[0].op, Op::Add);
  EXPECT_TRUE(p.hier_calls.empty());
}

TEST(ReplayProgramTest, UnaryOpsShareOneConstantSlot) {
  // Two Neg nodes: both take the pooled constant 0 as their second
  // operand, and the pool must deduplicate it.
  Dfg d("g", 1, 2);
  const int a = d.connect({kPrimaryIn, 0}, {});
  const int n1 = d.add_node(Op::Neg);
  const int n2 = d.add_node(Op::Neg);
  d.add_consumer(a, {n1, 0});
  const int m = d.connect({n1, 0}, {{kPrimaryOut, 0}});
  d.add_consumer(m, {n2, 0});
  d.connect({n2, 0}, {{kPrimaryOut, 1}});
  d.validate();

  const ReplayProgram p = compile_replay(d);
  ASSERT_EQ(p.consts.size(), 1u);
  EXPECT_EQ(p.consts[0], 0);
  ASSERT_EQ(p.steps.size(), 2u);
  EXPECT_EQ(p.steps[0].b, p.num_edges);  // both read the pooled zero
  EXPECT_EQ(p.steps[1].b, p.num_edges);
}

TEST(ReplayProgramTest, MemoizedByContentHash) {
  const Dfg d1 = testing_support::random_dfg(3, 12);
  const Dfg d2 = testing_support::random_dfg(3, 12);  // same content
  const Dfg d3 = testing_support::random_dfg(4, 12);
  const auto p1 = replay_program_of(d1);
  const auto p2 = replay_program_of(d2);
  const auto p3 = replay_program_of(d3);
  EXPECT_EQ(p1.get(), p2.get());  // one compile per content hash
  EXPECT_NE(p1.get(), p3.get());
}

// ---- Kernel vs interpreter, small shapes --------------------------------

void expect_same_matrix(const Dfg& d, const BehaviorResolver& res,
                        const Trace& tr) {
  const EdgeMatrix compiled = matrix_under(ReplayMode::Compiled, d, res, tr);
  const EdgeMatrix interp = matrix_under(ReplayMode::Interp, d, res, tr);
  ASSERT_EQ(compiled.num_edges(), interp.num_edges());
  ASSERT_EQ(compiled.samples(), interp.samples());
  EXPECT_EQ(compiled, interp) << d.name();
}

TEST(ReplayEquivalence, PassThroughDfg) {
  Dfg d("wire", 1, 1);
  d.connect({kPrimaryIn, 0}, {{kPrimaryOut, 0}});
  d.validate();
  expect_same_matrix(d, kNoHier, make_trace(1, 9, 21));
}

TEST(ReplayEquivalence, UnaryNegDfg) {
  Dfg d("neg", 1, 1);
  const int a = d.connect({kPrimaryIn, 0}, {});
  const int n = d.add_node(Op::Neg);
  d.add_consumer(a, {n, 0});
  d.connect({n, 0}, {{kPrimaryOut, 0}});
  d.validate();
  const Trace tr = make_trace(1, 16, 22);
  expect_same_matrix(d, kNoHier, tr);
  const EdgeMatrix m = matrix_under(ReplayMode::Compiled, d, kNoHier, tr);
  for (std::size_t t = 0; t < tr.size(); ++t) {
    EXPECT_EQ(m.at(1, t), eval_op(Op::Neg, tr[t][0], 0));
  }
}

TEST(ReplayEquivalence, EmptyTrace) {
  const Dfg d = testing_support::random_dfg(5, 10);
  const EdgeMatrix m = matrix_under(ReplayMode::Compiled, d, kNoHier, Trace{});
  EXPECT_EQ(m.samples(), 0u);
  EXPECT_EQ(m.num_edges(), static_cast<int>(d.edges().size()));
  expect_same_matrix(d, kNoHier, Trace{});
}

TEST(ReplayEquivalence, SingleSampleTrace) {
  const Dfg d = testing_support::random_dfg(6, 10);
  expect_same_matrix(d, kNoHier, make_trace(d.num_inputs(), 1, 23));
}

TEST(ReplayEquivalence, RandomDfgs) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const Dfg d = testing_support::random_dfg(seed, 4 + 3 * static_cast<int>(seed));
    expect_same_matrix(d, kNoHier, make_trace(d.num_inputs(), 24, seed));
  }
}

// ---- Kernel vs interpreter, bundled benchmarks --------------------------

class ReplayBenchmarkEquivalence
    : public ::testing::TestWithParam<std::string> {};

TEST_P(ReplayBenchmarkEquivalence, TopBehaviorMatchesInterpreter) {
  const Library lib = default_library();
  const Benchmark bench = make_benchmark(GetParam(), lib);
  const Dfg& top = bench.design.top();
  const BehaviorResolver res = design_resolver(bench.design);
  expect_same_matrix(top, res, make_trace(top.num_inputs(), 32, 97));
}

TEST_P(ReplayBenchmarkEquivalence, CompiledIsThreadCountInvariant) {
  const Library lib = default_library();
  const Benchmark bench = make_benchmark(GetParam(), lib);
  const Dfg& top = bench.design.top();
  const BehaviorResolver res = design_resolver(bench.design);
  const Trace tr = make_trace(top.num_inputs(), 33, 98);  // odd: ragged chunks
  const int before = runtime::threads();
  runtime::set_threads(1);
  const EdgeMatrix m1 = matrix_under(ReplayMode::Compiled, top, res, tr);
  runtime::set_threads(2);
  const EdgeMatrix m2 = matrix_under(ReplayMode::Compiled, top, res, tr);
  runtime::set_threads(8);
  const EdgeMatrix m8 = matrix_under(ReplayMode::Compiled, top, res, tr);
  runtime::set_threads(before);
  EXPECT_EQ(m1, m2);
  EXPECT_EQ(m1, m8);
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, ReplayBenchmarkEquivalence,
                         ::testing::Values("avenhaus_cascade", "lat", "dct",
                                           "iir", "hier_paulin", "test1",
                                           "fir16", "dct2d"));

// ---- Full synthesis bit-identity ----------------------------------------

SynthOptions quick_opts() {
  SynthOptions o;
  o.max_passes = 2;
  o.max_moves_per_pass = 6;
  o.max_candidates = 8;
  o.trace_samples = 16;
  o.max_clocks = 2;
  return o;
}

struct SynthSnapshot {
  double area = 0, energy = 0, power = 0;
  int makespan = 0, deadline = 0;
  double vdd = 0, clk = 0;
  std::string summary;  // report text minus the wall-clock line

  friend bool operator==(const SynthSnapshot&, const SynthSnapshot&) = default;
};

SynthSnapshot run_synthesis(ReplayMode mode, int threads) {
  ReplayModeScope scope(mode);
  const int before = runtime::threads();
  runtime::set_threads(threads);
  const Library lib = default_library();
  const Benchmark bench = make_benchmark("hier_paulin", lib);
  const double ts = 1.8 * min_sample_period_ns(bench.design, lib);
  const SynthResult r =
      synthesize(bench.design, lib, &bench.clib, ts, Objective::Power,
                 Mode::Hierarchical, quick_opts());
  runtime::set_threads(before);
  EXPECT_TRUE(r.ok) << r.fail_reason;
  SynthSnapshot s;
  s.area = r.area;
  s.energy = r.energy;
  s.power = r.power;
  s.makespan = r.makespan;
  s.deadline = r.deadline_cycles;
  s.vdd = r.pt.vdd;
  s.clk = r.pt.clk_ns;
  std::istringstream in(result_summary(r, lib));
  for (std::string line; std::getline(in, line);) {
    if (line.find("time") != std::string::npos) continue;  // wall clock
    s.summary += line;
    s.summary += '\n';
  }
  return s;
}

TEST(ReplaySynthesisIdentity, BitIdenticalAcrossModesAndThreadCounts) {
  const SynthSnapshot golden = run_synthesis(ReplayMode::Interp, 1);
  for (const ReplayMode mode : {ReplayMode::Compiled, ReplayMode::Interp}) {
    for (const int threads : {1, 2, 8}) {
      const SynthSnapshot got = run_synthesis(mode, threads);
      EXPECT_EQ(got, golden)
          << (mode == ReplayMode::Compiled ? "compiled" : "interp") << " @ "
          << threads << " threads";
    }
  }
}

TEST(ReplaySynthesisIdentity, BitIdenticalAcrossIsas) {
  // Full synthesis (schedule + moves + power estimation + report) must
  // not move by a single bit when the kernel ISA changes -- the
  // acceptance gate behind HSYN_REPLAY_ISA.
  const SynthSnapshot golden = run_synthesis(ReplayMode::Interp, 1);
  for (const ReplayIsa isa : available_isas()) {
    ReplayIsaScope scope(isa);
    for (const int threads : {1, 2, 8}) {
      const SynthSnapshot got = run_synthesis(ReplayMode::Compiled, threads);
      EXPECT_EQ(got, golden)
          << replay_isa_name(isa) << " @ " << threads << " threads";
    }
  }
}

// ---- ISA dispatch plumbing ----------------------------------------------

TEST(ReplayIsaTest, ParseAcceptsOnlyKnownNames) {
  ReplayIsa isa;
  EXPECT_TRUE(parse_replay_isa("scalar", &isa));
  EXPECT_EQ(isa, ReplayIsa::Scalar);
  EXPECT_TRUE(parse_replay_isa("avx2", &isa));
  EXPECT_EQ(isa, ReplayIsa::Avx2);
  EXPECT_TRUE(parse_replay_isa("neon", &isa));
  EXPECT_EQ(isa, ReplayIsa::Neon);
  EXPECT_TRUE(parse_replay_isa("native", &isa));
  EXPECT_EQ(isa, ReplayIsa::Native);
  EXPECT_FALSE(parse_replay_isa("", &isa));
  EXPECT_FALSE(parse_replay_isa("sse2", &isa));
  EXPECT_FALSE(parse_replay_isa("AVX2", &isa));
}

TEST(ReplayIsaTest, ScalarAndNativeAlwaysAvailable) {
  EXPECT_TRUE(replay_isa_available(ReplayIsa::Scalar));
  EXPECT_TRUE(replay_isa_available(ReplayIsa::Native));
  // The resolved selection is always a concrete table.
  ReplayIsaScope scope(ReplayIsa::Native);
  EXPECT_NE(replay_isa(), ReplayIsa::Native);
  EXPECT_TRUE(replay_isa_available(replay_isa()));
}

TEST(ReplayIsaTest, NamesRoundTrip) {
  for (const ReplayIsa isa : {ReplayIsa::Scalar, ReplayIsa::Avx2,
                              ReplayIsa::Neon, ReplayIsa::Native}) {
    ReplayIsa parsed;
    ASSERT_TRUE(parse_replay_isa(replay_isa_name(isa), &parsed));
    EXPECT_EQ(parsed, isa);
  }
}

TEST(ReplayIsaTest, GaugeTracksSelection) {
  obs::Registry& reg = obs::Registry::instance();
  for (const ReplayIsa isa : available_isas()) {
    ReplayIsaScope scope(isa);
    EXPECT_EQ(reg.gauge("replay.isa").value(),
              static_cast<double>(static_cast<int>(isa) + 1))
        << replay_isa_name(isa);
    const auto sources = reg.poll_sources();
    const auto it = sources.find("replay-isa");
    ASSERT_NE(it, sources.end());
    EXPECT_EQ(it->second.at("available_scalar"), 1u);
    EXPECT_EQ(it->second.at(std::string("selected_") + replay_isa_name(isa)),
              1u);
  }
}

// ---- Kernel tables: every available ISA vs the scalar reference ---------

/// Random 16-bit operand columns; the second also doubles as a shift
/// count (the kernels mask with & 15, so any int32 is a legal operand).
std::pair<std::vector<std::int32_t>, std::vector<std::int32_t>>
random_operands(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::int32_t> a(n), b(n);
  for (auto& x : a) x = mask16(static_cast<std::int64_t>(rng.next()));
  for (auto& x : b) x = mask16(static_cast<std::int64_t>(rng.next()));
  return {std::move(a), std::move(b)};
}

TEST(ReplayKernelTable, OpKernelsMatchScalarAtOddLengths) {
  const detail::ReplayKernelTable& ref = detail::scalar_kernel_table();
  for (const ReplayIsa isa : available_isas()) {
    if (isa == ReplayIsa::Scalar) continue;
    ReplayIsaScope scope(isa);
    const detail::ReplayKernelTable& kt = detail::active_kernel_table();
    ASSERT_EQ(kt.isa, isa);
    // Lengths straddle the 4- and 8-lane widths to exercise full vector
    // bodies, pure tails, and mixed body+tail sweeps.
    for (const std::size_t n :
         {0u, 1u, 2u, 3u, 4u, 5u, 7u, 8u, 9u, 15u, 16u, 17u, 31u, 33u, 257u}) {
      const auto [a, b] = random_operands(n, 1000 + n);
      for (int op = 0; op < detail::kNumOpKernels; ++op) {
        std::vector<std::int32_t> got(n, -12345), want(n, -12345);
        kt.op[op](a.data(), b.data(), got.data(), n);
        ref.op[op](a.data(), b.data(), want.data(), n);
        EXPECT_EQ(got, want) << kt.name << " op " << op << " len " << n;
      }
    }
  }
}

TEST(ReplayKernelTable, OpKernelsMatchEvalOp) {
  // The scalar table itself must agree with the interpreter's eval_op
  // element by element (the SIMD tables then inherit the property via
  // OpKernelsMatchScalarAtOddLengths).
  const detail::ReplayKernelTable& ref = detail::scalar_kernel_table();
  const std::size_t n = 64;
  const auto [a, b] = random_operands(n, 77);
  for (int op = 0; op < detail::kNumOpKernels; ++op) {
    std::vector<std::int32_t> got(n);
    ref.op[op](a.data(), b.data(), got.data(), n);
    for (std::size_t t = 0; t < n; ++t) {
      EXPECT_EQ(got[t], eval_op(static_cast<Op>(op), a[t], b[t]))
          << "op " << op << " at " << t;
    }
  }
}

TEST(ReplayKernelTable, ToggleKernelsMatchScalarAtOddLengths) {
  for (const ReplayIsa isa : available_isas()) {
    ReplayIsaScope scope(isa);
    const detail::ReplayKernelTable& kt = detail::active_kernel_table();
    for (const std::size_t n :
         {0u, 1u, 2u, 3u, 5u, 8u, 9u, 16u, 17u, 33u, 257u}) {
      const auto [a, b] = random_operands(n, 2000 + n);
      int want_tc = 0;
      for (std::size_t i = 1; i < n; ++i) want_tc += hamming16(a[i - 1], a[i]);
      EXPECT_EQ(kt.toggle_count(a.data(), n), want_tc)
          << kt.name << " toggle_count len " << n;
      int want_hp = 0;
      for (std::size_t i = 0; i < n; ++i) want_hp += hamming16(a[i], b[i]);
      EXPECT_EQ(kt.hamming_pair(a.data(), b.data(), n), want_hp)
          << kt.name << " hamming_pair len " << n;
    }
  }
}

// ---- Fused toggle gather -------------------------------------------------

TEST(FusedToggle, GatherMatchesBufferedInterleave) {
  for (const ReplayIsa isa : available_isas()) {
    ReplayIsaScope scope(isa);
    Rng rng(31);
    for (const std::size_t n_cols : {1u, 2u, 3u, 4u, 5u}) {
      for (const std::size_t T : {0u, 1u, 2u, 3u, 8u, 33u, 257u}) {
        std::vector<std::vector<std::int32_t>> cols(
            n_cols, std::vector<std::int32_t>(T));
        std::vector<const std::int32_t*> ptrs;
        for (auto& c : cols) {
          for (auto& x : c) x = mask16(static_cast<std::int64_t>(rng.next()));
          ptrs.push_back(c.data());
        }
        // The reference: materialize the sample-major interleave the
        // estimator used to build in its arena, count that.
        std::vector<std::int32_t> buf;
        buf.reserve(n_cols * T);
        for (std::size_t t = 0; t < T; ++t) {
          for (std::size_t c = 0; c < n_cols; ++c) buf.push_back(cols[c][t]);
        }
        EXPECT_EQ(toggle_count_gather(ptrs.data(), n_cols, T),
                  toggle_count(buf.data(), buf.size()))
            << replay_isa_name(isa) << " n_cols " << n_cols << " T " << T;
      }
    }
  }
}

TEST(FusedToggle, EmptyShapesAreZero) {
  const std::int32_t v = 42;
  const std::int32_t* col = &v;
  EXPECT_EQ(toggle_count_gather(nullptr, 0, 5), 0);
  EXPECT_EQ(toggle_count_gather(&col, 1, 0), 0);
  EXPECT_EQ(toggle_count_gather(&col, 1, 1), 0);  // one event never toggles
}

TEST(FusedToggle, HammingPairMatchesScalar) {
  Rng rng(41);
  for (const std::size_t n : {0u, 1u, 7u, 8u, 9u, 64u, 129u}) {
    std::vector<std::int32_t> a(n), b(n);
    for (auto& x : a) x = mask16(static_cast<std::int64_t>(rng.next()));
    for (auto& x : b) x = mask16(static_cast<std::int64_t>(rng.next()));
    int want = 0;
    for (std::size_t i = 0; i < n; ++i) want += hamming16(a[i], b[i]);
    EXPECT_EQ(hamming_pair(a.data(), b.data(), n), want) << "length " << n;
  }
}

// ---- EdgeMatrix transpose ------------------------------------------------

TEST(EdgeMatrixTest, RowsMatchesAt) {
  // 37 x 129 straddles the 64-wide transpose tiles in both dimensions.
  Rng rng(53);
  EdgeMatrix m(37, 129);
  for (int e = 0; e < m.num_edges(); ++e) {
    std::int32_t* c = m.col_mut(e);
    for (std::size_t t = 0; t < m.samples(); ++t) {
      c[t] = mask16(static_cast<std::int64_t>(rng.next()));
    }
  }
  const auto rows = m.rows();
  ASSERT_EQ(rows.size(), m.samples());
  for (std::size_t t = 0; t < m.samples(); ++t) {
    ASSERT_EQ(rows[t].size(), static_cast<std::size_t>(m.num_edges()));
    for (int e = 0; e < m.num_edges(); ++e) {
      ASSERT_EQ(rows[t][static_cast<std::size_t>(e)], m.at(e, t))
          << "edge " << e << " sample " << t;
    }
  }
}

// ---- ISA-forced equivalence: benchmarks, random DFGs, threads ------------

class ReplayIsaEquivalence : public ::testing::TestWithParam<std::string> {};

TEST_P(ReplayIsaEquivalence, MatchesInterpreterAtEveryThreadCount) {
  const Library lib = default_library();
  const Benchmark bench = make_benchmark(GetParam(), lib);
  const Dfg& top = bench.design.top();
  const BehaviorResolver res = design_resolver(bench.design);
  const Trace tr = make_trace(top.num_inputs(), 33, 98);  // odd: ragged tails
  const EdgeMatrix golden = matrix_under(ReplayMode::Interp, top, res, tr);
  const int before = runtime::threads();
  for (const ReplayIsa isa : available_isas()) {
    ReplayIsaScope scope(isa);
    for (const int threads : {1, 2, 8}) {
      runtime::set_threads(threads);
      const EdgeMatrix got = matrix_under(ReplayMode::Compiled, top, res, tr);
      EXPECT_EQ(got, golden)
          << replay_isa_name(isa) << " @ " << threads << " threads";
    }
  }
  runtime::set_threads(before);
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, ReplayIsaEquivalence,
                         ::testing::Values("avenhaus_cascade", "lat", "dct",
                                           "iir", "hier_paulin", "test1",
                                           "fir16", "dct2d"));

TEST(ReplayIsaEquivalenceRandom, RandomDfgsAtOddLengths) {
  // Trace lengths straddling the vector widths: full bodies, pure tails,
  // and mixed sweeps through the compiled kernel's chunked columns.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const Dfg d =
        testing_support::random_dfg(seed, 6 + 4 * static_cast<int>(seed));
    for (const int T : {1, 3, 7, 8, 9, 17, 33}) {
      const Trace tr = make_trace(d.num_inputs(), T, 300 + seed);
      const EdgeMatrix golden =
          matrix_under(ReplayMode::Interp, d, kNoHier, tr);
      for (const ReplayIsa isa : available_isas()) {
        ReplayIsaScope scope(isa);
        const EdgeMatrix got =
            matrix_under(ReplayMode::Compiled, d, kNoHier, tr);
        EXPECT_EQ(got, golden)
            << replay_isa_name(isa) << " seed " << seed << " T " << T;
      }
    }
  }
}

// ---- Mode plumbing and arena --------------------------------------------

TEST(ReplayModeTest, ParseAcceptsOnlyKnownNames) {
  ReplayMode m;
  EXPECT_TRUE(parse_replay_mode("interp", &m));
  EXPECT_EQ(m, ReplayMode::Interp);
  EXPECT_TRUE(parse_replay_mode("compiled", &m));
  EXPECT_EQ(m, ReplayMode::Compiled);
  EXPECT_FALSE(parse_replay_mode("", &m));
  EXPECT_FALSE(parse_replay_mode("fast", &m));
  EXPECT_FALSE(parse_replay_mode("INTERP", &m));
}

TEST(ArenaTest, FramesNestAndReleaseInLifoOrder) {
  runtime::Arena& a = runtime::Arena::local();
  runtime::Arena::Frame outer(a);
  std::int32_t* x = a.alloc_i32(100);
  x[0] = 1;
  x[99] = 2;
  {
    runtime::Arena::Frame inner(a);
    std::int32_t* y = a.alloc_i32(1 << 16);
    y[0] = 3;
    y[(1 << 16) - 1] = 4;
  }
  // The outer allocation survives the inner frame.
  EXPECT_EQ(x[0], 1);
  EXPECT_EQ(x[99], 2);
  std::int32_t* z = a.alloc_i32(8);
  z[7] = 5;
  EXPECT_EQ(z[7], 5);
  EXPECT_GT(a.reserved(), 0u);
}

}  // namespace
}  // namespace hsyn
