#include <gtest/gtest.h>

#include "benchmarks/benchmarks.h"
#include "rtl/cost.h"
#include "sched/scheduler.h"
#include "synth/initial.h"

namespace hsyn {
namespace {

const OpPoint kRef{5.0, 20.0};

struct Fixture {
  Library lib = default_library();
  Design design;
  Datapath dp;

  Fixture() {
    design.add_behavior(make_paulin_iter("paulin"));
    design.set_top("paulin");
    design.validate();
    SynthContext cx;
    cx.design = &design;
    cx.lib = &lib;
    cx.pt = kRef;
    dp = initial_solution(design.top(), "paulin", cx);
    schedule_datapath(dp, lib, kRef, kNoDeadline);
  }
};

TEST(Cost, ParallelArchitectureHasNoMuxes) {
  Fixture f;
  const Connectivity conn = connectivity_of(f.dp);
  EXPECT_EQ(conn.mux_inputs(), 0);  // each port fed by exactly one register
  const AreaBreakdown a = area_of(f.dp, f.lib);
  EXPECT_DOUBLE_EQ(a.mux, 0);
  EXPECT_GT(a.fu, 0);
  EXPECT_GT(a.reg, 0);
  EXPECT_GT(a.wire, 0);
  EXPECT_GT(a.ctrl, 0);
  EXPECT_DOUBLE_EQ(a.children, 0);
  EXPECT_NEAR(a.total(), a.fu + a.reg + a.mux + a.wire + a.ctrl, 1e-9);
}

TEST(Cost, SharingCreatesMuxesButSavesUnitArea) {
  Fixture f;
  const double base_area = area_of(f.dp, f.lib).total();

  // Merge all six mults onto the first mult unit.
  BehaviorImpl& bi = f.dp.behaviors[0];
  int first_mult_unit = -1;
  for (Invocation& inv : bi.invs) {
    if (bi.dfg->node(inv.nodes[0]).op != Op::Mult) continue;
    if (first_mult_unit < 0) {
      first_mult_unit = inv.unit.idx;
    } else {
      inv.unit.idx = first_mult_unit;
    }
  }
  f.dp.prune_unused();
  ASSERT_TRUE(schedule_datapath(f.dp, f.lib, kRef, kNoDeadline).ok);
  const AreaBreakdown shared = area_of(f.dp, f.lib);
  EXPECT_GT(shared.mux, 0);                    // muxes appeared
  EXPECT_LT(shared.total(), base_area);        // but area still dropped
  EXPECT_NO_THROW(f.dp.validate(f.lib));
}

TEST(Cost, ControllerStatesTrackMakespan) {
  Fixture f;
  EXPECT_EQ(controller_states(f.dp), f.dp.behaviors[0].makespan + 1);
}

TEST(Cost, RegisterMergeReducesRegArea) {
  Fixture f;
  const AreaBreakdown before = area_of(f.dp, f.lib);
  BehaviorImpl& bi = f.dp.behaviors[0];
  // Merge two input registers whose values coexist? No -- pick two edges
  // with disjoint lifetimes: x1's output and cond's input both exist, so
  // instead merge the registers of two short-lived adder outputs.
  int r1 = -1, r2 = -1, e2 = -1;
  for (const Edge& e : bi.dfg->edges()) {
    if (e.src.node < 0) continue;
    const Op op = bi.dfg->node(e.src.node).op;
    if (op != Op::Mult) continue;
    if (r1 < 0) {
      r1 = bi.edge_reg[static_cast<std::size_t>(e.id)];
    } else if (r2 < 0) {
      r2 = bi.edge_reg[static_cast<std::size_t>(e.id)];
      e2 = e.id;
    }
  }
  ASSERT_GE(r2, 0);
  bi.edge_reg[static_cast<std::size_t>(e2)] = r1;
  f.dp.prune_unused();
  if (schedule_datapath(f.dp, f.lib, kRef, kNoDeadline).ok) {
    const AreaBreakdown after = area_of(f.dp, f.lib);
    EXPECT_LT(after.reg, before.reg);
  }
}

TEST(Cost, LocalWiresCheaperThanGlobal) {
  const Library lib = default_library();
  const Benchmark bench = make_benchmark("iir", lib);
  SynthContext cx;
  cx.design = &bench.design;
  cx.lib = &lib;
  cx.clib = &bench.clib;
  cx.pt = kRef;
  Datapath dp = initial_solution(bench.design.top(), "iir", cx);
  schedule_datapath(dp, lib, kRef, kNoDeadline);
  const double as_top = area_of(dp, lib, /*top_level=*/true).total();
  const double as_local = area_of(dp, lib, /*top_level=*/false).total();
  EXPECT_GT(as_top, as_local);
}

TEST(Cost, ConnectivityCountsDistinctSources) {
  Fixture f;
  BehaviorImpl& bi = f.dp.behaviors[0];
  // Route two different registers into one port by merging two mult
  // invocations onto a single unit.
  std::vector<std::size_t> mult_invs;
  for (std::size_t i = 0; i < bi.invs.size(); ++i) {
    if (bi.dfg->node(bi.invs[i].nodes[0]).op == Op::Mult) mult_invs.push_back(i);
  }
  ASSERT_GE(mult_invs.size(), 2u);
  bi.invs[mult_invs[1]].unit.idx = bi.invs[mult_invs[0]].unit.idx;
  f.dp.prune_unused();
  const Connectivity conn = connectivity_of(f.dp);
  int max_srcs = 0;
  for (const auto& ports : conn.fu_port_srcs) {
    for (const auto& s : ports) {
      max_srcs = std::max<int>(max_srcs, static_cast<int>(s.size()));
    }
  }
  EXPECT_GE(max_srcs, 2);
  EXPECT_GT(conn.control_signals(), 0);
  EXPECT_GT(conn.net_sinks(), 0);
}

}  // namespace
}  // namespace hsyn
