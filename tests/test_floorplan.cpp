// Floorplanner: placement validity (no overlaps, bounded bbox), HPWL
// behavior, and agreement in direction with the RTL wire model.
#include <gtest/gtest.h>

#include "place/floorplan.h"
#include "rtl/cost.h"
#include "sched/scheduler.h"
#include "synth/initial.h"
#include "synth/synthesizer.h"

#include "benchmarks/benchmarks.h"

namespace hsyn {
namespace {

using place::Floorplan;

const OpPoint kRef{5.0, 20.0};

Datapath make_scheduled(const Design& design, const Library& lib,
                        const ComplexLibrary* clib = nullptr) {
  SynthContext cx;
  cx.design = &design;
  cx.lib = &lib;
  cx.clib = clib;
  cx.pt = kRef;
  Datapath dp = initial_solution(design.top(), design.top_name(), cx);
  schedule_datapath(dp, lib, kRef, kNoDeadline);
  return dp;
}

TEST(Floorplan, BlocksDoNotOverlap) {
  const Library lib = default_library();
  Design design;
  design.add_behavior(make_paulin_iter("paulin"));
  design.set_top("paulin");
  const Datapath dp = make_scheduled(design, lib);
  const Floorplan fp = place::floorplan(dp, lib);
  ASSERT_EQ(fp.blocks.size(), dp.fus.size() + dp.regs.size());
  for (std::size_t i = 0; i < fp.blocks.size(); ++i) {
    for (std::size_t j = i + 1; j < fp.blocks.size(); ++j) {
      const auto& a = fp.blocks[i];
      const auto& b = fp.blocks[j];
      const bool overlap = a.x < b.x + b.w - 1e-9 && b.x < a.x + a.w - 1e-9 &&
                           a.y < b.y + b.h - 1e-9 && b.y < a.y + a.h - 1e-9;
      EXPECT_FALSE(overlap) << a.name << " vs " << b.name;
    }
  }
}

TEST(Floorplan, PackingIsReasonablyTight) {
  const Library lib = default_library();
  Design design;
  design.add_behavior(make_biquad("biquad"));
  design.set_top("biquad");
  const Datapath dp = make_scheduled(design, lib);
  const Floorplan fp = place::floorplan(dp, lib);
  EXPECT_GE(fp.bbox_area(), fp.cell_area());
  EXPECT_LT(fp.bbox_area(), fp.cell_area() * 3.0);
}

TEST(Floorplan, HpwlPositiveAndNetsCoverRegisters) {
  const Library lib = default_library();
  Design design;
  design.add_behavior(make_biquad("biquad"));
  design.set_top("biquad");
  const Datapath dp = make_scheduled(design, lib);
  const Floorplan fp = place::floorplan(dp, lib);
  EXPECT_EQ(fp.nets.size(), dp.regs.size());
  EXPECT_GT(fp.hpwl(), 0);
}

TEST(Floorplan, SharingShrinksWirelengthAndBbox) {
  // The physical confirmation of the area move: merging all multipliers
  // removes blocks, shrinking both the floorplan and the total wiring.
  const Library lib = default_library();
  Design design;
  design.add_behavior(make_paulin_iter("paulin"));
  design.set_top("paulin");
  Datapath par = make_scheduled(design, lib);

  Datapath shared = par;
  BehaviorImpl& bi = shared.behaviors[0];
  int first = -1;
  for (Invocation& inv : bi.invs) {
    if (bi.dfg->node(inv.nodes[0]).op != Op::Mult) continue;
    if (first < 0) {
      first = inv.unit.idx;
    } else {
      inv.unit.idx = first;
    }
  }
  shared.prune_unused();
  ASSERT_TRUE(schedule_datapath(shared, lib, kRef, kNoDeadline).ok);

  const Floorplan fp_par = place::floorplan(par, lib);
  const Floorplan fp_sh = place::floorplan(shared, lib);
  EXPECT_LT(fp_sh.bbox_area(), fp_par.bbox_area());
  EXPECT_LT(fp_sh.hpwl(), fp_par.hpwl() * 1.1);
}

TEST(Floorplan, ChildrenBecomeOpaqueBlocks) {
  const Library lib = default_library();
  const Benchmark bench = make_benchmark("iir", lib);
  const Datapath dp = make_scheduled(bench.design, lib, &bench.clib);
  const Floorplan fp = place::floorplan(dp, lib);
  EXPECT_EQ(fp.blocks.size(),
            dp.fus.size() + dp.regs.size() + dp.children.size());
  // Child blocks are far larger than registers.
  const auto& child = fp.blocks.back();
  EXPECT_GT(child.w * child.h, 100);
}

TEST(Floorplan, ReportRenders) {
  const Library lib = default_library();
  Design design;
  design.add_behavior(make_butterfly("bf"));
  design.set_top("bf");
  const Datapath dp = make_scheduled(design, lib);
  const Floorplan fp = place::floorplan(dp, lib);
  const std::string rep = place::floorplan_report(fp);
  EXPECT_NE(rep.find("HPWL"), std::string::npos);
  EXPECT_NE(rep.find("packing"), std::string::npos);
}

}  // namespace
}  // namespace hsyn
