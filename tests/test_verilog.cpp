// Verilog backend: structural checks on the emitted RTL (module
// boundaries, ports, register transfers, operand capture for multicycle
// units, child instances, merged-module behavior select).
#include <gtest/gtest.h>

#include "benchmarks/benchmarks.h"
#include "embed/embedder.h"
#include "sched/scheduler.h"
#include "synth/initial.h"
#include "synth/synthesizer.h"
#include "util/fmt.h"
#include "verilog/verilog.h"

namespace hsyn {
namespace {

const OpPoint kRef{5.0, 20.0};

int count_occurrences(const std::string& hay, const std::string& needle) {
  int n = 0;
  for (std::size_t pos = hay.find(needle); pos != std::string::npos;
       pos = hay.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

TEST(Verilog, SimpleModuleStructure) {
  const Library lib = default_library();
  Design design;
  design.add_behavior(make_biquad("biquad"));
  design.set_top("biquad");
  SynthContext cx;
  cx.design = &design;
  cx.lib = &lib;
  cx.pt = kRef;
  Datapath dp = initial_solution(design.top(), "biquad", cx);
  ASSERT_TRUE(schedule_datapath(dp, lib, kRef, kNoDeadline).ok);
  const std::string v = to_verilog(dp, lib, kRef);

  EXPECT_EQ(count_occurrences(v, "module "), 1);
  EXPECT_EQ(count_occurrences(v, "endmodule"), 1);
  EXPECT_NE(v.find("input wire clk"), std::string::npos);
  EXPECT_NE(v.find("input wire [15:0] in_7"), std::string::npos);  // 8 inputs
  EXPECT_NE(v.find("output wire [15:0] out_2"), std::string::npos);
  EXPECT_NE(v.find("always @(posedge clk)"), std::string::npos);
  EXPECT_NE(v.find("done <= 1'b1;"), std::string::npos);
  // Multiplications are multicycle: operand shadows must exist.
  EXPECT_NE(v.find("t_b0_"), std::string::npos);
  // Outputs are continuous assigns.
  EXPECT_NE(v.find("assign out_0 = r"), std::string::npos);
  // No behavior select on a single-behavior module.
  EXPECT_EQ(v.find("input wire [3:0] sel"), std::string::npos);
}

TEST(Verilog, HierarchicalEmitsChildModules) {
  const Library lib = default_library();
  const Benchmark bench = make_benchmark("iir", lib);
  SynthContext cx;
  cx.design = &bench.design;
  cx.lib = &lib;
  cx.clib = &bench.clib;
  cx.pt = kRef;
  Datapath dp = initial_solution(bench.design.top(), "iir", cx);
  ASSERT_TRUE(schedule_datapath(dp, lib, kRef, kNoDeadline).ok);
  const std::string v = to_verilog(dp, lib, kRef);

  // Three biquad child instances -> three child module definitions plus
  // the top module.
  EXPECT_EQ(count_occurrences(v, "endmodule"), 4);
  EXPECT_NE(v.find(".start(c0_start)"), std::string::npos);
  EXPECT_NE(v.find("wire [15:0] c2_out0;"), std::string::npos);
  // Child outputs latch into parent registers.
  EXPECT_NE(v.find("<= c0_out0;"), std::string::npos);
}

TEST(Verilog, MergedModuleGetsBehaviorSelect) {
  const Library lib = default_library();
  const Benchmark bench = make_benchmark("test1", lib);
  Datapath a = make_template_fast(bench.design.behavior("maddpair"), lib);
  Datapath b = make_template_fast(bench.design.behavior("seqmac"), lib);
  schedule_datapath(a, lib, kRef, kNoDeadline);
  schedule_datapath(b, lib, kRef, kNoDeadline);
  auto merged = embed_modules(a, b, lib, kRef, nullptr);
  ASSERT_TRUE(merged.has_value());
  ASSERT_TRUE(schedule_datapath(*merged, lib, kRef, kNoDeadline).ok);
  const std::string v = to_verilog(*merged, lib, kRef);
  EXPECT_NE(v.find("input wire [3:0] sel"), std::string::npos);
  EXPECT_NE(v.find("sel == 4'd0"), std::string::npos);
  EXPECT_NE(v.find("sel == 4'd1"), std::string::npos);
}

TEST(Verilog, OneRegisterLoadPerInternallyProducedEdge) {
  const Library lib = default_library();
  Design design;
  design.add_behavior(make_paulin_iter("paulin"));
  design.set_top("paulin");
  SynthContext cx;
  cx.design = &design;
  cx.lib = &lib;
  cx.pt = kRef;
  Datapath dp = initial_solution(design.top(), "paulin", cx);
  ASSERT_TRUE(schedule_datapath(dp, lib, kRef, kNoDeadline).ok);
  const std::string v = to_verilog(dp, lib, kRef);
  // Every internally produced, registered edge must be loaded somewhere.
  const BehaviorImpl& bi = dp.behaviors[0];
  for (const Edge& e : bi.dfg->edges()) {
    if (e.src.node < 0) continue;
    const int r = bi.edge_reg[static_cast<std::size_t>(e.id)];
    if (r < 0) continue;
    EXPECT_GE(count_occurrences(v, strf(" r%d <= ", r)), 1) << "reg " << r;
  }
  // Multicycle multiplications capture their operands into shadows.
  EXPECT_GE(count_occurrences(v, "t_b0_"), 12);
}

TEST(Verilog, RequiresScheduledInput) {
  const Library lib = default_library();
  Design design;
  design.add_behavior(make_butterfly("bf"));
  design.set_top("bf");
  SynthContext cx;
  cx.design = &design;
  cx.lib = &lib;
  cx.pt = kRef;
  Datapath dp = initial_solution(design.top(), "bf", cx);
  EXPECT_THROW(to_verilog(dp, lib, kRef), std::logic_error);
}

TEST(Verilog, SynthesizedDesignEmits) {
  const Library lib = default_library();
  const Benchmark bench = make_benchmark("test1", lib);
  const double ts = 2.2 * min_sample_period_ns(bench.design, lib);
  SynthOptions opts;
  opts.max_passes = 2;
  const SynthResult r = synthesize(bench.design, lib, &bench.clib, ts,
                                   Objective::Power, Mode::Hierarchical, opts);
  ASSERT_TRUE(r.ok);
  const std::string v = to_verilog(r.dp, lib, r.pt);
  EXPECT_GT(count_occurrences(v, "endmodule"), 1);
  EXPECT_NE(v.find("Generated by H-SYN"), std::string::npos);
}

}  // namespace
}  // namespace hsyn
