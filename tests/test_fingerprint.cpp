// Fingerprint semantics: the identities the evaluation caches key by.
//
// Three layers are checked:
//   * Dfg::canonical_hash -- invariant under construction order and
//     node/edge renumbering, sensitive to any structural change,
//   * Dfg::content_hash -- id-exact (bindings are id-addressed), but
//     blind to labels and names,
//   * Datapath::fingerprint -- mutation-sensitive, and the incrementally
//     maintained cache always agrees with the from-scratch recompute,
//     including across real move sequences on every benchmark design.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "benchmarks/benchmarks.h"
#include "power/trace.h"
#include "rtl/fingerprint.h"
#include "sched/scheduler.h"
#include "synth/initial.h"
#include "synth/moves.h"

namespace hsyn {
namespace {

const OpPoint kRef{5.0, 20.0};

// Variants of the expression graph (a+b)*(c-d) -> out. Each mutation is a
// single structural change the canonical hash must distinguish.
enum class Variant {
  Base,
  OpChanged,       ///< the Add becomes an Xor
  InputsSwapped,   ///< the Sub consumes (d,c) instead of (c,d)
  ExtraOutput,     ///< the Sub result also leaves on a second primary output
};

Dfg make_expr(Variant v = Variant::Base) {
  Dfg d("expr", 4, v == Variant::ExtraOutput ? 2 : 1);
  std::vector<int> in(4);
  for (int i = 0; i < 4; ++i) in[i] = d.connect({kPrimaryIn, i}, {});
  const int add = d.add_node(v == Variant::OpChanged ? Op::Xor : Op::Add);
  const int sub = d.add_node(Op::Sub);
  const int mul = d.add_node(Op::Mult);
  d.add_consumer(in[0], {add, 0});
  d.add_consumer(in[1], {add, 1});
  const bool swap = v == Variant::InputsSwapped;
  d.add_consumer(in[swap ? 3 : 2], {sub, 0});
  d.add_consumer(in[swap ? 2 : 3], {sub, 1});
  d.connect({add, 0}, {{mul, 0}});
  const int es = d.connect({sub, 0}, {{mul, 1}});
  d.connect({mul, 0}, {{kPrimaryOut, 0}});
  if (v == Variant::ExtraOutput) d.add_consumer(es, {kPrimaryOut, 1});
  d.validate();
  return d;
}

// The same graph as make_expr(Base), built backwards: nodes in reverse,
// output wiring before input edges, input edges last-to-first. Every node
// id and edge id ends up different.
Dfg make_expr_reversed() {
  Dfg d("expr_r", 4, 1);
  const int mul = d.add_node(Op::Mult);
  const int sub = d.add_node(Op::Sub);
  const int add = d.add_node(Op::Add);
  d.connect({mul, 0}, {{kPrimaryOut, 0}});
  d.connect({sub, 0}, {{mul, 1}});
  d.connect({add, 0}, {{mul, 0}});
  std::vector<int> in(4);
  for (int i = 3; i >= 0; --i) in[static_cast<std::size_t>(i)] = d.connect({kPrimaryIn, i}, {});
  d.add_consumer(in[0], {add, 0});
  d.add_consumer(in[1], {add, 1});
  d.add_consumer(in[2], {sub, 0});
  d.add_consumer(in[3], {sub, 1});
  d.validate();
  return d;
}

TEST(CanonicalHash, InvariantUnderConstructionOrder) {
  const Dfg a = make_expr();
  const Dfg b = make_expr_reversed();
  // Same graph, renumbered: canonical hashes agree...
  EXPECT_EQ(a.canonical_hash(), b.canonical_hash());
  // ...while the id-exact content hash sees the different numbering.
  EXPECT_NE(a.content_hash(), b.content_hash());
}

TEST(CanonicalHash, EverySingleMutationChangesIt) {
  const Variant all[] = {Variant::Base, Variant::OpChanged,
                         Variant::InputsSwapped, Variant::ExtraOutput};
  std::set<std::uint64_t> canonical;
  std::set<std::uint64_t> content;
  for (const Variant v : all) {
    const Dfg d = make_expr(v);
    canonical.insert(d.canonical_hash());
    content.insert(d.content_hash());
  }
  EXPECT_EQ(canonical.size(), 4u);
  EXPECT_EQ(content.size(), 4u);
}

TEST(ContentHash, IgnoresLabelsAndNames) {
  Dfg a("first", 2, 1);
  Dfg b("second", 2, 1);
  for (Dfg* d : {&a, &b}) {
    const int e0 = d->connect({kPrimaryIn, 0}, {});
    const int e1 = d->connect({kPrimaryIn, 1}, {});
    const int n = d->add_node(Op::Add, d == &a ? "+1" : "sum");
    d->add_consumer(e0, {n, 0});
    d->add_consumer(e1, {n, 1});
    d->connect({n, 0}, {{kPrimaryOut, 0}}, d == &a ? "" : "y");
    d->validate();
  }
  EXPECT_EQ(a.content_hash(), b.content_hash());
  EXPECT_EQ(a.canonical_hash(), b.canonical_hash());
}

// ---- Datapath fingerprints ----------------------------------------------

struct Fixture {
  Library lib = default_library();
  Benchmark bench;
  SynthContext cx;
  Datapath dp;

  explicit Fixture(const std::string& name, int extra_slack = 8) {
    bench = make_benchmark(name, lib);
    cx.design = &bench.design;
    cx.lib = &lib;
    cx.clib = &bench.clib;
    cx.pt = kRef;
    cx.obj = Objective::Area;
    cx.opts.enable_resynth = false;  // keep move generation cheap
    cx.trace = make_trace(bench.design.top().num_inputs(), 8, 3);
    dp = initial_solution(bench.design.top(), name, cx);
    const SchedResult r = schedule_datapath(dp, lib, kRef, kNoDeadline);
    EXPECT_TRUE(r.ok);
    cx.deadline = r.makespan + extra_slack;
  }
};

// Flat single-behavior datapath (the Paulin/HAL diffeq iteration) for
// the direct-mutation tests.
struct FlatFixture {
  Library lib = default_library();
  Design design;
  Datapath dp;

  FlatFixture() {
    design.add_behavior(make_paulin_iter("paulin"));
    design.set_top("paulin");
    design.validate();
    SynthContext cx;
    cx.design = &design;
    cx.lib = &lib;
    cx.pt = kRef;
    dp = initial_solution(design.top(), "paulin", cx);
    schedule_datapath(dp, lib, kRef, kNoDeadline);
  }
};

TEST(Fingerprint, CopyIsContentEqual) {
  Fixture f("test1");
  const Datapath copy = f.dp;
  EXPECT_EQ(copy.fingerprint(), f.dp.fingerprint());
  EXPECT_EQ(copy.fingerprint(), copy.fingerprint_scratch());
}

TEST(Fingerprint, ChangesOnUnitTypeSwap) {
  FlatFixture f;
  ASSERT_FALSE(f.dp.fus.empty());
  Datapath dp2 = f.dp;
  dp2.fus[0].type = (dp2.fus[0].type + 1) % f.lib.num_fu_types();
  dp2.invalidate_fingerprint();
  EXPECT_NE(dp2.fingerprint(), f.dp.fingerprint());
  EXPECT_EQ(dp2.fingerprint(), dp2.fingerprint_scratch());
}

TEST(Fingerprint, ChangesOnRegisterRebind) {
  FlatFixture f;
  // Merge two variables onto one register: find two edges bound to
  // different registers and point the second at the first's.
  BehaviorImpl& bi = f.dp.behaviors[0];
  int e1 = -1, e2 = -1;
  for (std::size_t e = 0; e < bi.edge_reg.size(); ++e) {
    if (bi.edge_reg[e] < 0) continue;
    if (e1 < 0) {
      e1 = static_cast<int>(e);
    } else if (bi.edge_reg[e] != bi.edge_reg[static_cast<std::size_t>(e1)]) {
      e2 = static_cast<int>(e);
      break;
    }
  }
  ASSERT_GE(e2, 0);
  Datapath dp2 = f.dp;
  dp2.behaviors[0].edge_reg[static_cast<std::size_t>(e2)] =
      bi.edge_reg[static_cast<std::size_t>(e1)];
  dp2.invalidate_fingerprint();
  EXPECT_NE(dp2.fingerprint(), f.dp.fingerprint());
  EXPECT_EQ(dp2.fingerprint(), dp2.fingerprint_scratch());
}

TEST(Fingerprint, ChangesOnChildMutation) {
  Fixture f("test1");
  ASSERT_FALSE(f.dp.children.empty());
  Datapath dp2 = f.dp;
  Datapath* child = nullptr;
  for (ChildUnit& cu : dp2.children) {
    if (!cu.impl->fus.empty()) {
      child = cu.impl.get();
      break;
    }
  }
  ASSERT_NE(child, nullptr);
  child->fus[0].type = (child->fus[0].type + 1) % f.lib.num_fu_types();
  // The documented contract: direct mutation invalidates the touched
  // level and every enclosing level (real mutation sites -- the
  // scheduler, prune_unused, the move generators -- do this for us).
  child->invalidate_fingerprint();
  dp2.invalidate_fingerprint();
  EXPECT_NE(dp2.fingerprint(), f.dp.fingerprint());
  EXPECT_EQ(dp2.fingerprint(), dp2.fingerprint_scratch());
}

TEST(Fingerprint, ScheduleStateIsPartOfTheIdentity) {
  FlatFixture f;
  Datapath dp2 = f.dp;
  dp2.behaviors[0].scheduled = false;
  dp2.behaviors[0].inv_start.clear();
  dp2.invalidate_fingerprint();
  EXPECT_NE(dp2.fingerprint(), f.dp.fingerprint());
  EXPECT_EQ(dp2.fingerprint(), dp2.fingerprint_scratch());
}

TEST(Fingerprint, IncrementalMatchesScratchOnEveryBenchmark) {
  for (const std::string& name : benchmark_names()) {
    Fixture f(name);
    EXPECT_EQ(f.dp.fingerprint(), f.dp.fingerprint_scratch()) << name;
    // Real moves route through the audited mutation sites; their results
    // must come out with a coherent cached fingerprint.
    for (const Move& m :
         {best_sharing_move(f.dp, f.cx), best_replace_move(f.dp, f.cx)}) {
      if (!m.valid) continue;
      EXPECT_EQ(m.result.fingerprint(), m.result.fingerprint_scratch())
          << name << " " << m.kind;
    }
  }
}

TEST(Fingerprint, StaysCoherentAcrossMoveSequence) {
  Fixture f("test1");
  Datapath cur = f.dp;
  for (int step = 0; step < 3; ++step) {
    Move m = best_sharing_move(cur, f.cx);
    if (!m.valid) m = best_splitting_move(cur, f.cx);
    if (!m.valid) break;
    cur = std::move(m.result);
    ASSERT_EQ(cur.fingerprint(), cur.fingerprint_scratch()) << "step " << step;
  }
}

}  // namespace
}  // namespace hsyn
