#include <gtest/gtest.h>

#include "benchmarks/benchmarks.h"
#include "sched/scheduler.h"
#include "synth/initial.h"

namespace hsyn {
namespace {

const OpPoint kRef{5.0, 20.0};

SynthContext make_cx(const Design* design, const Library& lib) {
  SynthContext cx;
  cx.design = design;
  cx.lib = &lib;
  cx.pt = kRef;
  cx.deadline = kNoDeadline;
  return cx;
}

struct Fixture {
  Library lib = default_library();
  Design design;

  explicit Fixture(Dfg dfg) {
    const std::string name = dfg.name();
    design.add_behavior(std::move(dfg));
    design.set_top(name);
    design.validate();
  }

  Datapath initial() {
    SynthContext cx = make_cx(&design, lib);
    return initial_solution(design.top(), design.top_name(), cx);
  }
};

Dfg two_adds_series() {
  Dfg d("series", 3, 1);
  const int a1 = d.add_node(Op::Add);
  const int a2 = d.add_node(Op::Add);
  d.connect({kPrimaryIn, 0}, {{a1, 0}});
  d.connect({kPrimaryIn, 1}, {{a1, 1}});
  d.connect({kPrimaryIn, 2}, {{a2, 1}});
  d.connect({a1, 0}, {{a2, 0}});
  d.connect({a2, 0}, {{kPrimaryOut, 0}});
  d.validate();
  return d;
}

TEST(Scheduler, SerialDependencyTiming) {
  Fixture f(two_adds_series());
  Datapath dp = f.initial();
  const SchedResult r = schedule_datapath(dp, f.lib, kRef, kNoDeadline);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.makespan, 2);  // add1 (1 cycle) twice in series
  EXPECT_EQ(dp.behaviors[0].inv_start[0], 0);
  EXPECT_EQ(dp.behaviors[0].inv_start[1], 1);
}

TEST(Scheduler, DeadlineViolationReported) {
  Fixture f(two_adds_series());
  Datapath dp = f.initial();
  const SchedResult r = schedule_datapath(dp, f.lib, kRef, 1);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.makespan, 2);
  EXPECT_NE(r.reason.find("deadline"), std::string::npos);
}

TEST(Scheduler, SharedUnitSerializes) {
  // Two independent adds on one unit must execute one after the other.
  Dfg d("par", 4, 2);
  const int a1 = d.add_node(Op::Add);
  const int a2 = d.add_node(Op::Add);
  d.connect({kPrimaryIn, 0}, {{a1, 0}});
  d.connect({kPrimaryIn, 1}, {{a1, 1}});
  d.connect({kPrimaryIn, 2}, {{a2, 0}});
  d.connect({kPrimaryIn, 3}, {{a2, 1}});
  d.connect({a1, 0}, {{kPrimaryOut, 0}});
  d.connect({a2, 0}, {{kPrimaryOut, 1}});
  d.validate();
  Fixture f(std::move(d));
  Datapath dp = f.initial();
  ASSERT_TRUE(schedule_datapath(dp, f.lib, kRef, kNoDeadline).ok);
  EXPECT_EQ(dp.behaviors[0].makespan, 1);  // parallel units

  // Merge both invocations onto unit 0.
  dp.behaviors[0].invs[1].unit.idx = 0;
  dp.prune_unused();
  const SchedResult r = schedule_datapath(dp, f.lib, kRef, kNoDeadline);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.makespan, 2);  // serialized
  EXPECT_NE(dp.behaviors[0].inv_start[0], dp.behaviors[0].inv_start[1]);
}

TEST(Scheduler, MultiCycleUnitOccupies) {
  // Two mults sharing one mult1 (3 cycles each): second starts at 3.
  Dfg d("mm", 4, 2);
  const int m1 = d.add_node(Op::Mult);
  const int m2 = d.add_node(Op::Mult);
  d.connect({kPrimaryIn, 0}, {{m1, 0}});
  d.connect({kPrimaryIn, 1}, {{m1, 1}});
  d.connect({kPrimaryIn, 2}, {{m2, 0}});
  d.connect({kPrimaryIn, 3}, {{m2, 1}});
  d.connect({m1, 0}, {{kPrimaryOut, 0}});
  d.connect({m2, 0}, {{kPrimaryOut, 1}});
  d.validate();
  Fixture f(std::move(d));
  Datapath dp = f.initial();
  dp.behaviors[0].invs[1].unit.idx = dp.behaviors[0].invs[0].unit.idx;
  dp.prune_unused();
  const SchedResult r = schedule_datapath(dp, f.lib, kRef, kNoDeadline);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.makespan, 6);
}

TEST(Scheduler, RegisterSharingOrdersWriteAfterRead) {
  // v1 = a+b feeds the mult; v2 = c+d written into the same register as
  // v1 must wait until the mult has read v1.
  Dfg d("war", 4, 2);
  const int a1 = d.add_node(Op::Add);
  const int m = d.add_node(Op::Mult);
  const int a2 = d.add_node(Op::Add);
  d.connect({kPrimaryIn, 0}, {{a1, 0}});
  d.connect({kPrimaryIn, 1}, {{a1, 1}});
  const int v1 = d.connect({a1, 0}, {{m, 0}, {m, 1}});
  d.connect({kPrimaryIn, 2}, {{a2, 0}});
  d.connect({kPrimaryIn, 3}, {{a2, 1}});
  const int v2 = d.connect({a2, 0}, {{kPrimaryOut, 1}});
  d.connect({m, 0}, {{kPrimaryOut, 0}});
  d.validate();
  Fixture f(std::move(d));
  Datapath dp = f.initial();
  ASSERT_TRUE(schedule_datapath(dp, f.lib, kRef, kNoDeadline).ok);

  // Share one register between v1 and v2.
  BehaviorImpl& bi = dp.behaviors[0];
  bi.edge_reg[static_cast<std::size_t>(v2)] =
      bi.edge_reg[static_cast<std::size_t>(v1)];
  dp.prune_unused();
  const SchedResult r = schedule_datapath(dp, f.lib, kRef, kNoDeadline);
  ASSERT_TRUE(r.ok);
  // Write of v2 (end of a2) must come after the mult's read of v1
  // (mult start). a2 finishes at start+1 > mult start.
  const int mult_start = bi.inv_start[bi.inv_of(m)];
  const int a2_end = bi.inv_start[bi.inv_of(a2)] + 1;
  EXPECT_GT(a2_end, mult_start);
}

TEST(Scheduler, TwoPrimaryOutputsCannotShareRegister) {
  Dfg d("po", 2, 2);
  const int a1 = d.add_node(Op::Add);
  const int a2 = d.add_node(Op::Add);
  d.connect({kPrimaryIn, 0}, {{a1, 0}, {a2, 1}});
  d.connect({kPrimaryIn, 1}, {{a1, 1}, {a2, 0}});
  const int v1 = d.connect({a1, 0}, {{kPrimaryOut, 0}});
  const int v2 = d.connect({a2, 0}, {{kPrimaryOut, 1}});
  d.validate();
  Fixture f(std::move(d));
  Datapath dp = f.initial();
  BehaviorImpl& bi = dp.behaviors[0];
  bi.edge_reg[static_cast<std::size_t>(v2)] =
      bi.edge_reg[static_cast<std::size_t>(v1)];
  dp.prune_unused();
  EXPECT_FALSE(schedule_datapath(dp, f.lib, kRef, kNoDeadline).ok);
}

TEST(Scheduler, ChildProfileAlignsParentSchedule) {
  const Library lib = default_library();
  const Benchmark bench = make_benchmark("iir", lib);
  SynthContext cx = make_cx(&bench.design, lib);
  cx.clib = &bench.clib;
  Datapath dp = initial_solution(bench.design.top(), "iir", cx);
  const SchedResult r = schedule_datapath(dp, lib, kRef, kNoDeadline);
  ASSERT_TRUE(r.ok);
  // Three cascaded biquads: each starts when the previous y is ready.
  const BehaviorImpl& bi = dp.behaviors[0];
  ASSERT_EQ(bi.invs.size(), 3u);
  EXPECT_LT(bi.inv_start[0], bi.inv_start[1]);
  EXPECT_LT(bi.inv_start[1], bi.inv_start[2]);
}

TEST(Scheduler, AlapBoundsRespectAsap) {
  const Library lib = default_library();
  Design design;
  design.add_behavior(make_paulin_iter("paulin"));
  design.set_top("paulin");
  design.validate();
  SynthContext cx = make_cx(&design, lib);
  Datapath dp = initial_solution(design.top(), "paulin", cx);
  ASSERT_TRUE(schedule_datapath(dp, lib, kRef, kNoDeadline).ok);
  const int deadline = dp.behaviors[0].makespan + 4;
  const auto alap = alap_starts(dp, 0, lib, kRef, deadline);
  ASSERT_EQ(alap.size(), dp.behaviors[0].invs.size());
  for (std::size_t i = 0; i < alap.size(); ++i) {
    EXPECT_GE(alap[i], dp.behaviors[0].inv_start[i]) << "inv " << i;
  }
}

TEST(Scheduler, StaggeredInputArrivalsDelayStart) {
  Fixture f(two_adds_series());
  Datapath dp = f.initial();
  dp.behaviors[0].input_arrival = {0, 0, 5};  // c arrives late
  const SchedResult r = schedule_datapath(dp, f.lib, kRef, kNoDeadline);
  ASSERT_TRUE(r.ok);
  // a2 needs input c at cycle 5.
  EXPECT_GE(dp.behaviors[0].inv_start[1], 5);
  EXPECT_EQ(r.makespan, 6);
}

}  // namespace
}  // namespace hsyn
