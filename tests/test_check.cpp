// Tests for the static-analysis framework (src/check/): each check pass
// must detect a targeted corruption by its stable code, pristine designs
// and synthesis results must lint clean, and the move-invariant gate
// must never change synthesis results.
#include <gtest/gtest.h>

#include "benchmarks/benchmarks.h"
#include "check/check.h"
#include "util/log.h"
#include "rtl/controller.h"
#include "runtime/thread_pool.h"
#include "sched/scheduler.h"
#include "synth/initial.h"
#include "synth/synthesizer.h"

namespace hsyn {
namespace {

const OpPoint kRef{5.0, 20.0};

SynthOptions quick_opts() {
  SynthOptions o;
  o.max_passes = 3;
  o.max_moves_per_pass = 8;
  o.max_candidates = 12;
  o.trace_samples = 16;
  o.max_clocks = 3;
  return o;
}

/// A scheduled initial solution for a benchmark, ready to corrupt.
struct Fixture {
  Library lib = default_library();
  Benchmark bench;
  SynthContext cx;
  Datapath dp;

  explicit Fixture(const std::string& name, double laxity = 2.0)
      : bench(make_benchmark(name, lib)) {
    cx.design = &bench.design;
    cx.lib = &lib;
    cx.clib = &bench.clib;
    cx.pt = kRef;
    cx.trace = make_trace(bench.design.top().num_inputs(), 8, 5);
    dp = initial_solution(bench.design.top(), name, cx);
    const SchedResult r = schedule_datapath(dp, lib, kRef, kNoDeadline);
    cx.deadline = static_cast<int>(r.makespan * laxity);
    schedule_datapath(dp, lib, kRef, cx.deadline);
  }

  lint::Report lint() const {
    return lint::lint_datapath(dp, lib, kRef, cx.deadline, &bench.design);
  }
};

// ---- framework basics ----------------------------------------------------

TEST(CheckEngine, RegistersDefaultPassesInOrder) {
  const auto passes = lint::CheckEngine::instance().passes();
  ASSERT_EQ(passes.size(), 10u);
  EXPECT_STREQ(passes[0]->name(), "dfg-wellformed");
  EXPECT_STREQ(passes[1]->name(), "dfg-hierarchy");
  EXPECT_STREQ(passes[2]->name(), "dfg-deadcode");
  EXPECT_STREQ(passes[3]->name(), "dfg-const-fold");
  EXPECT_STREQ(passes[4]->name(), "dfg-range-overflow");
  EXPECT_STREQ(passes[5]->name(), "dfg-width-waste");
  EXPECT_STREQ(passes[6]->name(), "rtl-binding");
  EXPECT_STREQ(passes[7]->name(), "sched-legality");
  EXPECT_STREQ(passes[8]->name(), "ctrl-consistency");
  EXPECT_STREQ(passes[9]->name(), "oppoint-sanity");
}

TEST(CheckEngine, CheapSubsetExcludesControllerPass) {
  for (const lint::Pass* p : lint::CheckEngine::instance().passes()) {
    if (std::string(p->name()) == "ctrl-consistency") {
      EXPECT_FALSE(p->cheap());
    } else {
      EXPECT_TRUE(p->cheap());
    }
  }
}

TEST(Report, CountsSeveritiesAndSerializes) {
  lint::Report rep;
  rep.add("X001", lint::Severity::Error, "here", "broken \"badly\"");
  rep.add("X002", lint::Severity::Warning, "there", "suspicious");
  rep.add("X001", lint::Severity::Error, "again", "still broken");
  EXPECT_FALSE(rep.ok());
  EXPECT_EQ(rep.errors(), 2);
  EXPECT_EQ(rep.warnings(), 1);
  EXPECT_EQ(rep.count("X001"), 2);
  EXPECT_TRUE(rep.has("X002"));
  EXPECT_FALSE(rep.has("X003"));
  const std::string text = rep.to_text();
  EXPECT_NE(text.find("error[X001] here: broken"), std::string::npos);
  EXPECT_NE(text.find("2 error(s), 1 warning(s)"), std::string::npos);
  const std::string json = rep.to_json();
  EXPECT_NE(json.find("\\\"badly\\\""), std::string::npos);
  EXPECT_NE(json.find("\"errors\": 2"), std::string::npos);
}

TEST(CheckMacros, CheckThrowsAndDcheckFollowsBuildType) {
  HSYN_CHECK(2 + 2 == 4, "never fires");
  EXPECT_THROW({ HSYN_CHECK(2 + 2 == 5, "arithmetic broke"); },
               std::logic_error);
#ifdef NDEBUG
  HSYN_DCHECK(false, "compiled out in release builds");
#else
  EXPECT_THROW({ HSYN_DCHECK(false, "fires in debug builds"); },
               std::logic_error);
#endif
}

// ---- dfg-wellformed ------------------------------------------------------

TEST(DfgWellformed, DetectsUndrivenInputPort) {
  Dfg g("g", 1, 1);
  const int n = g.add_node(Op::Add);
  g.connect({kPrimaryIn, 0}, {{n, 0}});
  g.connect({n, 0}, {{kPrimaryOut, 0}});  // input port 1 left undriven
  lint::CheckContext cx;
  cx.dfg = &g;
  const lint::Report rep = lint::CheckEngine::instance().run(cx);
  EXPECT_TRUE(rep.has("DFG001"));
  EXPECT_FALSE(rep.ok());
}

TEST(DfgWellformed, DetectsDanglingEndpointAndCycle) {
  Dfg g("g", 2, 1);
  const int a = g.add_node(Op::Add);
  const int b = g.add_node(Op::Add);
  g.connect({kPrimaryIn, 0}, {{a, 0}});
  g.connect({kPrimaryIn, 1}, {{b, 0}});
  g.connect({a, 0}, {{b, 1}});
  g.connect({b, 0}, {{a, 1}});  // cycle a -> b -> a
  g.connect({a, 0}, {{kPrimaryOut, 0}});
  lint::CheckContext cx;
  cx.dfg = &g;
  const lint::Report rep = lint::CheckEngine::instance().run(cx);
  EXPECT_TRUE(rep.has("DFG003"));
  // DFG006 too: node a output port 0 drives two edges.
  EXPECT_TRUE(rep.has("DFG006"));
}

TEST(DfgWellformed, DetectsUndrivenPrimaryOutput) {
  Dfg g("g", 2, 2);
  const int a = g.add_node(Op::Add);
  g.connect({kPrimaryIn, 0}, {{a, 0}});
  g.connect({kPrimaryIn, 1}, {{a, 1}});
  g.connect({a, 0}, {{kPrimaryOut, 0}});  // out:1 undriven
  lint::CheckContext cx;
  cx.dfg = &g;
  const lint::Report rep = lint::CheckEngine::instance().run(cx);
  EXPECT_TRUE(rep.has("DFG005"));
}

TEST(DfgWellformed, DetectsPortOutOfRangeAndArityMismatch) {
  Dfg g("g", 2, 1);
  const int a = g.add_node(Op::Add);
  g.connect({kPrimaryIn, 0}, {{a, 0}});
  g.connect({kPrimaryIn, 5}, {{a, 1}});  // primary input 5 of 2
  g.connect({a, 0}, {{kPrimaryOut, 0}});
  g.node_mut(a).num_inputs = 3;  // add is binary
  lint::CheckContext cx;
  cx.dfg = &g;
  const lint::Report rep = lint::CheckEngine::instance().run(cx);
  EXPECT_TRUE(rep.has("DFG002"));
  EXPECT_TRUE(rep.has("DFG008"));
}

TEST(DfgWellformed, WarnsOnDanglingEdgeAndUnusedInput) {
  Dfg g("g", 2, 1);
  const int a = g.add_node(Op::Add);
  g.connect({kPrimaryIn, 0}, {{a, 0}});
  g.connect({kPrimaryIn, 0}, {{a, 1}});  // input 1 never used
  g.connect({a, 0}, {{kPrimaryOut, 0}});
  lint::CheckContext cx;
  cx.dfg = &g;
  const lint::Report rep = lint::CheckEngine::instance().run(cx);
  EXPECT_TRUE(rep.has("DFG007"));
  EXPECT_EQ(rep.errors(), 0);  // warnings only
}

// ---- dfg-hierarchy -------------------------------------------------------

namespace {
Dfg leaf_dfg(const std::string& name) {
  Dfg g(name, 2, 1);
  const int a = g.add_node(Op::Add);
  g.connect({kPrimaryIn, 0}, {{a, 0}});
  g.connect({kPrimaryIn, 1}, {{a, 1}});
  g.connect({a, 0}, {{kPrimaryOut, 0}});
  return g;
}
}  // namespace

TEST(DfgHierarchy, DetectsUnknownBehaviorAndArityMismatch) {
  Design d;
  d.add_behavior(leaf_dfg("leaf"));
  Dfg top("top", 3, 2);
  const int h1 = top.add_hier_node("ghost", 2, 1);   // unregistered
  const int h2 = top.add_hier_node("leaf", 3, 1);    // leaf takes 2 inputs
  top.connect({kPrimaryIn, 0}, {{h1, 0}, {h2, 0}});
  top.connect({kPrimaryIn, 1}, {{h1, 1}, {h2, 1}});
  top.connect({kPrimaryIn, 2}, {{h2, 2}});
  top.connect({h1, 0}, {{kPrimaryOut, 0}});
  top.connect({h2, 0}, {{kPrimaryOut, 1}});
  d.add_behavior(std::move(top));
  d.set_top("top");
  lint::CheckContext cx;
  cx.design = &d;
  const lint::Report rep = lint::CheckEngine::instance().run(cx);
  EXPECT_TRUE(rep.has("HIER001"));
  EXPECT_TRUE(rep.has("HIER002"));
}

TEST(DfgHierarchy, DetectsRecursionAndBadTop) {
  Design d;
  Dfg self("self", 2, 1);
  const int h = self.add_hier_node("self", 2, 1);
  self.connect({kPrimaryIn, 0}, {{h, 0}});
  self.connect({kPrimaryIn, 1}, {{h, 1}});
  self.connect({h, 0}, {{kPrimaryOut, 0}});
  d.add_behavior(std::move(self));
  d.set_top("nonexistent");
  lint::CheckContext cx;
  cx.design = &d;
  const lint::Report rep = lint::CheckEngine::instance().run(cx);
  EXPECT_TRUE(rep.has("HIER003"));
  EXPECT_TRUE(rep.has("HIER006"));
}

TEST(DfgHierarchy, DetectsEquivalenceSignatureMismatch) {
  Design d;
  d.add_behavior(leaf_dfg("a"));
  d.add_behavior(leaf_dfg("b"));
  d.declare_equivalent("a", "b");
  d.set_top("a");
  // declare_equivalent checks signatures up front, so corrupt afterwards.
  d.behavior_mut("b").set_io(3, 1);
  lint::CheckContext cx;
  cx.design = &d;
  const lint::Report rep = lint::CheckEngine::instance().run(cx);
  EXPECT_TRUE(rep.has("HIER004"));
}

// ---- rtl-binding ---------------------------------------------------------

TEST(RtlBinding, DetectsCorruptNodeInvTable) {
  Fixture f("test1");
  ASSERT_GE(f.dp.behaviors[0].invs.size(), 2u);
  f.dp.behaviors[0].node_inv[f.dp.behaviors[0].invs[0].nodes[0]] = 1;
  const lint::Report rep = f.lint();
  EXPECT_TRUE(rep.has("BIND001"));
}

TEST(RtlBinding, DetectsUnitIndexOutOfRange) {
  Fixture f("test1");
  f.dp.behaviors[0].invs[0].unit.idx = 99;
  const lint::Report rep = f.lint();
  EXPECT_TRUE(rep.has("BIND002"));
}

TEST(RtlBinding, DetectsRegisterIndexOutOfRangeAndUnregisteredEdge) {
  Fixture f("test1");
  BehaviorImpl& bi = f.dp.behaviors[0];
  int corrupted = -1;
  for (std::size_t e = 0; e < bi.edge_reg.size(); ++e) {
    if (bi.edge_reg[e] >= 0) {
      corrupted = static_cast<int>(e);
      break;
    }
  }
  ASSERT_GE(corrupted, 0);
  bi.edge_reg[static_cast<std::size_t>(corrupted)] = 999;
  const lint::Report rep1 = f.lint();
  EXPECT_TRUE(rep1.has("BIND005"));
  bi.edge_reg[static_cast<std::size_t>(corrupted)] = -1;
  const lint::Report rep2 = f.lint();
  EXPECT_TRUE(rep2.has("BIND006"));
}

TEST(RtlBinding, DetectsTableSizeMismatch) {
  Fixture f("test1");
  f.dp.behaviors[0].edge_reg.pop_back();
  const lint::Report rep = f.lint();
  EXPECT_TRUE(rep.has("BIND008"));
}

// ---- sched-legality ------------------------------------------------------

/// Index of an invocation starting strictly after cycle 0 (-1 if none).
int late_inv(const BehaviorImpl& bi) {
  for (std::size_t i = 0; i < bi.inv_start.size(); ++i) {
    if (bi.inv_start[i] > 0) return static_cast<int>(i);
  }
  return -1;
}

TEST(SchedLegality, DetectsPrecedenceViolation) {
  Fixture f("test1");
  BehaviorImpl& bi = f.dp.behaviors[0];
  const int i = late_inv(bi);
  ASSERT_GE(i, 0);
  bi.inv_start[static_cast<std::size_t>(i)] = 0;  // pulls reads before writes
  const lint::Report rep = f.lint();
  EXPECT_FALSE(rep.ok());
  EXPECT_TRUE(rep.has("SCHED001") || rep.has("SCHED003"));
}

TEST(SchedLegality, DetectsNegativeStart) {
  Fixture f("test1");
  f.dp.behaviors[0].inv_start[0] = -3;
  const lint::Report rep = f.lint();
  EXPECT_TRUE(rep.has("SCHED002"));
}

/// Some behavior anywhere in the tree with at least two FU invocations
/// (the top level of a hierarchical design holds mostly child calls).
BehaviorImpl* find_two_fu_behavior(Datapath& dp) {
  for (BehaviorImpl& bi : dp.behaviors) {
    int fus = 0;
    for (const Invocation& inv : bi.invs) {
      fus += inv.unit.kind == UnitRef::Kind::Fu ? 1 : 0;
    }
    if (fus >= 2) return &bi;
  }
  for (ChildUnit& c : dp.children) {
    if (!c.impl) continue;
    if (BehaviorImpl* bi = find_two_fu_behavior(*c.impl)) return bi;
  }
  return nullptr;
}

TEST(SchedLegality, DetectsUnitDoubleBooking) {
  Fixture f("test1");
  BehaviorImpl* bi = find_two_fu_behavior(f.dp);
  ASSERT_NE(bi, nullptr) << "fixture has no behavior with two FU invs";
  // Rebind one FU invocation onto another's unit at the same start
  // cycle: a guaranteed double-booking whatever the initial binding.
  int a = -1, b = -1;
  for (std::size_t i = 0; i < bi->invs.size(); ++i) {
    if (bi->invs[i].unit.kind != UnitRef::Kind::Fu) continue;
    if (a < 0) {
      a = static_cast<int>(i);
    } else {
      b = static_cast<int>(i);
      break;
    }
  }
  ASSERT_GE(b, 0);
  bi->invs[static_cast<std::size_t>(b)].unit =
      bi->invs[static_cast<std::size_t>(a)].unit;
  bi->inv_start[static_cast<std::size_t>(b)] =
      bi->inv_start[static_cast<std::size_t>(a)];
  const lint::Report rep = f.lint();
  EXPECT_TRUE(rep.has("SCHED003"));
}

TEST(SchedLegality, DetectsRegisterLifetimeOverlap) {
  Fixture f("test1");
  BehaviorImpl& bi = f.dp.behaviors[0];
  // Merge two same-arrival primary-input values into one register: both
  // land in the same cycle, so the lifetimes collide immediately.
  int e1 = -1, e2 = -1;
  for (const Edge& e : bi.dfg->edges()) {
    if (e.src.node != kPrimaryIn) continue;
    if (bi.edge_reg[static_cast<std::size_t>(e.id)] < 0) continue;
    if (e1 < 0) {
      e1 = e.id;
    } else if (bi.edge_reg[static_cast<std::size_t>(e.id)] !=
               bi.edge_reg[static_cast<std::size_t>(e1)]) {
      e2 = e.id;
      break;
    }
  }
  ASSERT_GE(e2, 0) << "fixture has no two separately-registered inputs";
  bi.edge_reg[static_cast<std::size_t>(e2)] =
      bi.edge_reg[static_cast<std::size_t>(e1)];
  const lint::Report rep = f.lint();
  EXPECT_TRUE(rep.has("SCHED004"));
}

TEST(SchedLegality, DetectsMakespanMismatchAndDeadlineViolation) {
  Fixture f("test1");
  f.dp.behaviors[0].makespan += 5;
  const lint::Report rep = f.lint();
  EXPECT_TRUE(rep.has("SCHED006"));

  Fixture g("test1");
  const lint::Report rep2 =
      lint::lint_datapath(g.dp, g.lib, kRef, /*deadline=*/1);
  EXPECT_TRUE(rep2.has("SCHED007"));
}

// ---- ctrl-consistency ----------------------------------------------------

struct CtrlFixture : Fixture {
  Controller fsm;
  CtrlFixture() : Fixture("test1") {
    fsm = build_controller(dp, lib, kRef);
  }
  lint::Report lint_fsm() const {
    lint::CheckContext cx;
    cx.dp = &dp;
    cx.lib = &lib;
    cx.pt = kRef;
    cx.fsm = &fsm;
    return lint::CheckEngine::instance().run(cx);
  }
};

TEST(CtrlConsistency, GeneratedControllerIsConsistent) {
  CtrlFixture f;
  const lint::Report rep = f.lint_fsm();
  EXPECT_EQ(rep.errors(), 0) << rep.to_text();
}

TEST(CtrlConsistency, DetectsMissingAssert) {
  CtrlFixture f;
  for (FsmState& st : f.fsm.states) {
    if (!st.asserts.empty()) {
      st.asserts.pop_back();  // orphan one control point
      break;
    }
  }
  const lint::Report rep = f.lint_fsm();
  EXPECT_TRUE(rep.has("CTRL002"));
}

TEST(CtrlConsistency, DetectsSpuriousAndConflictingAsserts) {
  CtrlFixture f;
  ASSERT_FALSE(f.fsm.states.empty());
  f.fsm.states[0].asserts.push_back(
      {ControlAssert::Kind::RegLoad, "reg:r9999", "edge0"});
  f.fsm.states[0].asserts.push_back(
      {ControlAssert::Kind::RegLoad, "reg:r9999", "edge1"});
  const lint::Report rep = f.lint_fsm();
  EXPECT_TRUE(rep.has("CTRL003"));
  EXPECT_TRUE(rep.has("CTRL004"));
}

TEST(CtrlConsistency, DetectsStateTableCorruption) {
  CtrlFixture f;
  ASSERT_FALSE(f.fsm.states.empty());
  f.fsm.states.pop_back();  // dropped state
  const lint::Report rep = f.lint_fsm();
  EXPECT_TRUE(rep.has("CTRL001"));

  CtrlFixture g;
  g.fsm.states[0].id = 42;  // non-dense ids
  const lint::Report rep2 = g.lint_fsm();
  EXPECT_TRUE(rep2.has("CTRL005"));
}

TEST(CtrlConsistency, DetectsWrongMuxSelectAndSignalCount) {
  CtrlFixture f;
  bool flipped = false;
  for (FsmState& st : f.fsm.states) {
    for (ControlAssert& a : st.asserts) {
      if (a.kind == ControlAssert::Kind::MuxSelect) {
        a.detail = "r9999";  // steer the operand from the wrong register
        flipped = true;
        break;
      }
    }
    if (flipped) break;
  }
  ASSERT_TRUE(flipped) << "fixture has no mux selects";
  f.fsm.num_signals += 1;
  const lint::Report rep = f.lint_fsm();
  EXPECT_TRUE(rep.has("CTRL006"));
  EXPECT_TRUE(rep.has("CTRL007"));
}

// ---- oppoint-sanity ------------------------------------------------------

TEST(OpPointSanity, DetectsBadOperatingPoints) {
  lint::CheckContext cx;
  cx.deadline = 1;
  cx.pt = OpPoint{0.5, 20.0};  // below threshold voltage
  EXPECT_TRUE(lint::CheckEngine::instance().run(cx).has("VDD001"));
  cx.pt = OpPoint{5.0, -1.0};
  EXPECT_TRUE(lint::CheckEngine::instance().run(cx).has("VDD003"));
  cx.pt = OpPoint{5.0, 20.0};
  cx.deadline = 10;
  cx.sample_period_ns = 100.0;  // 10 cycles x 20 ns = 200 ns > 100 ns
  EXPECT_TRUE(lint::CheckEngine::instance().run(cx).has("VDD005"));
  cx.deadline = 5;  // exactly the period: legal
  EXPECT_TRUE(lint::CheckEngine::instance().run(cx).ok());
}

// ---- pristine inputs lint clean ------------------------------------------

TEST(Pristine, AllBenchmarkDesignsLintClean) {
  const Library lib = default_library();
  for (const std::string& name : benchmark_names()) {
    const Benchmark b = make_benchmark(name, lib);
    const lint::Report rep = lint::lint_design(b.design);
    EXPECT_EQ(rep.errors(), 0) << name << ":\n" << rep.to_text();
    EXPECT_EQ(rep.warnings(), 0) << name << ":\n" << rep.to_text();
  }
}

TEST(Pristine, InitialSolutionsLintClean) {
  for (const std::string& name : benchmark_names()) {
    Fixture f(name);
    const lint::Report rep = f.lint();
    EXPECT_EQ(rep.errors(), 0) << name << ":\n" << rep.to_text();
  }
}

TEST(Pristine, SynthesizerOutputsLintClean) {
  const Library lib = default_library();
  for (const std::string name : {"test1", "hier_paulin", "iir"}) {
    const Benchmark b = make_benchmark(name, lib);
    const double ts = 2.0 * min_sample_period_ns(b.design, lib);
    const SynthResult r =
        synthesize(b.design, lib, &b.clib, ts, Objective::Power,
                   Mode::Hierarchical, quick_opts());
    ASSERT_TRUE(r.ok) << name;
    const lint::Report rep = lint::lint_datapath(
        r.dp, lib, r.pt, r.deadline_cycles, &b.design);
    EXPECT_EQ(rep.errors(), 0) << name << ":\n" << rep.to_text();
  }
}

// ---- the move gate never changes results ---------------------------------

TEST(CheckMoves, GateIsBitIdenticalAcrossThreadCounts) {
  const Library lib = default_library();
  const Benchmark b = make_benchmark("hier_paulin", lib);
  const double ts = 2.0 * min_sample_period_ns(b.design, lib);

  auto run = [&](bool gate, int threads) {
    runtime::set_threads(threads);
    SynthOptions o = quick_opts();
    o.check_moves = gate;
    return synthesize(b.design, lib, &b.clib, ts, Objective::Power,
                      Mode::Hierarchical, o);
  };
  const SynthResult base = run(false, 1);
  ASSERT_TRUE(base.ok);
  const std::uint64_t fp = base.dp.fingerprint();
  for (const int threads : {1, 2, 8}) {
    const SynthResult r = run(true, threads);
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.dp.fingerprint(), fp) << "threads=" << threads;
    EXPECT_EQ(r.pt, base.pt) << "threads=" << threads;
    EXPECT_DOUBLE_EQ(r.area, base.area) << "threads=" << threads;
    EXPECT_DOUBLE_EQ(r.energy, base.energy) << "threads=" << threads;
  }
  runtime::set_threads(1);
}

}  // namespace
}  // namespace hsyn
