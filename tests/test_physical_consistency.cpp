// Cross-model consistency: the RTL estimator, the cycle-accurate RTL
// simulator, the gate level and the floorplanner must tell consistent
// stories about the same architectures.
#include <gtest/gtest.h>

#include "benchmarks/benchmarks.h"
#include "gates/gate_datapath.h"
#include "gates/gate_expand.h"
#include "place/floorplan.h"
#include "power/estimator.h"
#include "power/rtlsim.h"
#include "rtl/cost.h"
#include "sched/scheduler.h"
#include "synth/initial.h"
#include "synth/synthesizer.h"

namespace hsyn {
namespace {

const OpPoint kRef{5.0, 20.0};

TEST(PhysicalConsistency, EstimatorTracksRtlSimAcrossBenchmarks) {
  const Library lib = default_library();
  for (const char* name : {"iir", "lat", "test1"}) {
    const Benchmark bench = make_benchmark(name, lib);
    SynthContext cx;
    cx.design = &bench.design;
    cx.lib = &lib;
    cx.clib = &bench.clib;
    cx.pt = kRef;
    Datapath dp = initial_solution(bench.design.top(), name, cx);
    ASSERT_TRUE(schedule_datapath(dp, lib, kRef, kNoDeadline).ok);
    const Trace trace = make_trace(bench.design.top().num_inputs(), 32, 7);
    const double est = energy_of(dp, 0, trace, lib, kRef).total();
    const RtlSimResult sim = simulate_rtl(dp, 0, trace, lib, kRef);
    ASSERT_TRUE(sim.ok);
    EXPECT_NEAR(sim.energy.total(), est, est * 0.2) << name;
  }
}

TEST(PhysicalConsistency, GateAreaTracksRtlAreaAcrossArchitectures) {
  // Across a spectrum of architectures of the SAME behavior (parallel,
  // partially shared, fully shared), gate-level area must be monotone in
  // RTL-model area.
  const Library lib = default_library();
  Design design;
  design.add_behavior(make_paulin_iter("paulin"));
  design.set_top("paulin");
  SynthContext cx;
  cx.design = &design;
  cx.lib = &lib;
  cx.pt = kRef;
  Datapath dp = initial_solution(design.top(), "paulin", cx);
  ASSERT_TRUE(schedule_datapath(dp, lib, kRef, kNoDeadline).ok);

  std::vector<std::pair<double, double>> points;  // (rtl area, gate area)
  auto record = [&](const Datapath& d) {
    points.push_back({area_of(d, lib).total(),
                      gates::expand_datapath(d, lib).total_area()});
  };
  record(dp);

  // Share multipliers pairwise, then fully.
  Datapath half = dp;
  {
    BehaviorImpl& bi = half.behaviors[0];
    std::vector<int> mult_invs;
    for (std::size_t i = 0; i < bi.invs.size(); ++i) {
      if (bi.dfg->node(bi.invs[i].nodes[0]).op == Op::Mult) {
        mult_invs.push_back(static_cast<int>(i));
      }
    }
    for (std::size_t k = 1; k < mult_invs.size(); k += 2) {
      bi.invs[static_cast<std::size_t>(mult_invs[k])].unit.idx =
          bi.invs[static_cast<std::size_t>(mult_invs[k - 1])].unit.idx;
    }
    half.prune_unused();
    ASSERT_TRUE(schedule_datapath(half, lib, kRef, kNoDeadline).ok);
    record(half);
  }
  Datapath full = dp;
  {
    BehaviorImpl& bi = full.behaviors[0];
    int first = -1;
    for (Invocation& inv : bi.invs) {
      if (bi.dfg->node(inv.nodes[0]).op != Op::Mult) continue;
      if (first < 0) {
        first = inv.unit.idx;
      } else {
        inv.unit.idx = first;
      }
    }
    full.prune_unused();
    ASSERT_TRUE(schedule_datapath(full, lib, kRef, kNoDeadline).ok);
    record(full);
  }

  ASSERT_EQ(points.size(), 3u);
  // RTL areas strictly decrease with sharing; gate areas must follow.
  EXPECT_GT(points[0].first, points[1].first);
  EXPECT_GT(points[1].first, points[2].first);
  EXPECT_GT(points[0].second, points[1].second);
  EXPECT_GT(points[1].second, points[2].second);
}

TEST(PhysicalConsistency, GateTogglesScaleWithRtlEnergy) {
  // Two architectures of the same behavior: the one the RTL model calls
  // lower-energy must also switch less capacitance at the gate level.
  const Library lib = default_library();
  Design design;
  design.add_behavior(make_dot4("dot"));
  design.set_top("dot");
  SynthContext cx;
  cx.design = &design;
  cx.lib = &lib;
  cx.pt = kRef;
  Datapath fast = initial_solution(design.top(), "dot", cx);
  ASSERT_TRUE(schedule_datapath(fast, lib, kRef, kNoDeadline).ok);

  Datapath lp = make_template_lowpower(design.behavior("dot"), lib);
  ASSERT_TRUE(schedule_datapath(lp, lib, kRef, kNoDeadline).ok);

  const Trace trace = make_trace(8, 24, 5);
  const double e_fast = energy_of(fast, 0, trace, lib, kRef).fu;
  const double e_lp = energy_of(lp, 0, trace, lib, kRef).fu;
  EXPECT_LT(e_lp, e_fast);  // mult2-based module is lower energy

  // The RTL-level claim rests on the cap_sw ratio of mult2 vs mult1; the
  // gate level backs the *relative* magnitudes (both are array
  // multipliers here, so we check the estimator used the library caps).
  const double ratio = e_lp / e_fast;
  const double cap_ratio = lib.fu(lib.find_fu("mult2")).cap_sw /
                           lib.fu(lib.find_fu("mult1")).cap_sw;
  EXPECT_NEAR(ratio, cap_ratio, 0.25);
}

TEST(PhysicalConsistency, FloorplanHpwlTracksWireModel) {
  // Synthesized area-opt vs power-opt architecture of one circuit: the
  // design with more RTL net sinks should not have *less* wirelength.
  const Library lib = default_library();
  const Benchmark bench = make_benchmark("test1", lib);
  const double ts = 2.2 * min_sample_period_ns(bench.design, lib);
  SynthOptions opts;
  opts.max_passes = 2;
  const SynthResult a = synthesize(bench.design, lib, &bench.clib, ts,
                                   Objective::Area, Mode::Hierarchical, opts);
  const SynthResult p = synthesize(bench.design, lib, &bench.clib, ts,
                                   Objective::Power, Mode::Hierarchical, opts);
  ASSERT_TRUE(a.ok && p.ok);
  const double hpwl_a = place::floorplan(a.dp, lib).hpwl();
  const double hpwl_p = place::floorplan(p.dp, lib).hpwl();
  const double area_a = a.area;
  const double area_p = p.area;
  // The bigger design carries more wiring.
  if (area_p > area_a * 1.2) {
    EXPECT_GT(hpwl_p, hpwl_a * 0.8);
  }
  EXPECT_GT(hpwl_a, 0);
  EXPECT_GT(hpwl_p, 0);
}

}  // namespace
}  // namespace hsyn
