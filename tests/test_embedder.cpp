#include <gtest/gtest.h>

#include "benchmarks/benchmarks.h"
#include "embed/embedder.h"
#include "power/rtlsim.h"
#include "rtl/cost.h"
#include "sched/scheduler.h"

namespace hsyn {
namespace {

const OpPoint kRef{5.0, 20.0};

struct Modules {
  Library lib = default_library();
  Benchmark bench;
  Datapath a, b;

  Modules() : bench(make_benchmark("test1", lib)) {
    a = make_template_fast(bench.design.behavior("maddpair"), lib);
    b = make_template_fast(bench.design.behavior("seqmac"), lib);
    schedule_datapath(a, lib, kRef, kNoDeadline);
    schedule_datapath(b, lib, kRef, kNoDeadline);
  }
};

TEST(Embedder, MergedModuleIsSmallerThanSum) {
  Modules m;
  const double area_a = area_of(m.a, m.lib, false).total();
  const double area_b = area_of(m.b, m.lib, false).total();
  EmbedCorrespondence corr;
  auto merged = embed_modules(m.a, m.b, m.lib, kRef, &corr);
  ASSERT_TRUE(merged.has_value());
  ASSERT_TRUE(schedule_datapath(*merged, m.lib, kRef, kNoDeadline).ok);
  const double area_m = area_of(*merged, m.lib, false).total();
  EXPECT_LT(area_m, area_a + area_b);
  // Example 3's qualitative claim: the merged module is only modestly
  // larger than the bigger source module.
  EXPECT_LT(area_m, std::max(area_a, area_b) * 1.5);
  EXPECT_FALSE(corr.entries.empty());
}

TEST(Embedder, BothBehaviorsPreservedFunctionally) {
  Modules m;
  auto merged = embed_modules(m.a, m.b, m.lib, kRef, nullptr);
  ASSERT_TRUE(merged.has_value());
  ASSERT_TRUE(schedule_datapath(*merged, m.lib, kRef, kNoDeadline).ok);
  EXPECT_NO_THROW(merged->validate(m.lib));

  const int ba = merged->find_behavior("maddpair");
  const int bb = merged->find_behavior("seqmac");
  ASSERT_GE(ba, 0);
  ASSERT_GE(bb, 0);
  const Trace trace = make_trace(4, 16, 13);
  const RtlSimResult ra = simulate_rtl(*merged, ba, trace, m.lib, kRef, false);
  EXPECT_TRUE(ra.ok) << (ra.violations.empty() ? "" : ra.violations[0]);
  const RtlSimResult rb = simulate_rtl(*merged, bb, trace, m.lib, kRef, false);
  EXPECT_TRUE(rb.ok) << (rb.violations.empty() ? "" : rb.violations[0]);
}

TEST(Embedder, SchedulesPreservedVerbatim) {
  Modules m;
  const int makespan_a = m.a.behaviors[0].makespan;
  const int makespan_b = m.b.behaviors[0].makespan;
  auto merged = embed_modules(m.a, m.b, m.lib, kRef, nullptr);
  ASSERT_TRUE(merged.has_value());
  ASSERT_TRUE(schedule_datapath(*merged, m.lib, kRef, kNoDeadline).ok);
  EXPECT_EQ(merged->behaviors[0].makespan, makespan_a);
  EXPECT_EQ(merged->behaviors[1].makespan, makespan_b);
}

TEST(Embedder, OverlappingBehaviorsRejected) {
  Modules m;
  Datapath a2 = m.a;
  const auto merged = embed_modules(m.a, a2, m.lib, kRef, nullptr);
  EXPECT_FALSE(merged.has_value());
}

TEST(Embedder, CorrespondenceCoversEveryComponent) {
  Modules m;
  EmbedCorrespondence corr;
  auto merged = embed_modules(m.a, m.b, m.lib, kRef, &corr);
  ASSERT_TRUE(merged.has_value());
  EXPECT_EQ(corr.entries.size(), merged->fus.size() + merged->regs.size());
  int matched_fus = 0;
  for (const auto& e : corr.entries) {
    EXPECT_FALSE(e.merged.empty());
    if (e.from_a != "-" && e.from_b != "-") ++matched_fus;
  }
  EXPECT_GT(matched_fus, 0);  // at least one real pairing
}

TEST(Embedder, MergeUsage) {
  Modules m;
  const FuMergeUsage u = fu_merge_usage(m.a, 0, m.lib, kRef);
  EXPECT_EQ(u.ops.size(), 1u);
  EXPECT_EQ(u.max_chain, 1);
  // A mult1 and a mult1 merge onto mult1 itself.
  const int t = merged_fu_type(u, u, m.lib, kRef);
  EXPECT_EQ(t, m.lib.find_fu("mult1"));
}

TEST(Embedder, IncompatibleCyclesPreventFuMerge) {
  const Library lib = default_library();
  FuMergeUsage fast;
  fast.ops = {Op::Mult};
  fast.cycles = 3;
  FuMergeUsage slow;
  slow.ops = {Op::Mult};
  slow.cycles = 5;
  EXPECT_EQ(merged_fu_type(fast, slow, lib, kRef), -1);
}

TEST(Embedder, AddAndSubShareAlu) {
  const Library lib = default_library();
  const OpPoint pt{5.0, 24.0};  // alu1 = 1 cycle at 24 ns
  FuMergeUsage add;
  add.ops = {Op::Add};
  add.cycles = 1;
  FuMergeUsage sub;
  sub.ops = {Op::Sub};
  sub.cycles = 1;
  const int t = merged_fu_type(add, sub, lib, pt);
  ASSERT_GE(t, 0);
  EXPECT_EQ(lib.fu(t).name, "alu1");
}

}  // namespace
}  // namespace hsyn
