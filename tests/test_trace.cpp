#include <gtest/gtest.h>

#include "benchmarks/benchmarks.h"
#include "power/trace.h"

namespace hsyn {
namespace {

TEST(Mask16, WrapsAndSignExtends) {
  EXPECT_EQ(mask16(0), 0);
  EXPECT_EQ(mask16(32767), 32767);
  EXPECT_EQ(mask16(32768), -32768);
  EXPECT_EQ(mask16(-32769), 32767);
  EXPECT_EQ(mask16(65536), 0);
  EXPECT_EQ(mask16(-1), -1);
}

TEST(Hamming16, CountsBitDifferences) {
  EXPECT_EQ(hamming16(0, 0), 0);
  EXPECT_EQ(hamming16(0, 1), 1);
  EXPECT_EQ(hamming16(0, 0xFFFF), 16);
  EXPECT_EQ(hamming16(0x5555, 0xAAAA), 16);
  EXPECT_EQ(hamming16(-1, -1), 0);
  // Only the low 16 bits count.
  EXPECT_EQ(hamming16(0x10000, 0), 0);
}

TEST(EvalOp, ArithmeticSemantics) {
  EXPECT_EQ(eval_op(Op::Add, 30000, 10000), mask16(40000));
  EXPECT_EQ(eval_op(Op::Sub, 5, 7), -2);
  EXPECT_EQ(eval_op(Op::Mult, 300, 300), mask16(90000));
  EXPECT_EQ(eval_op(Op::ShiftL, 1, 4), 16);
  EXPECT_EQ(eval_op(Op::ShiftR, 16, 2), 4);
  EXPECT_EQ(eval_op(Op::Cmp, 3, 4), 1);
  EXPECT_EQ(eval_op(Op::Cmp, 4, 3), 0);
  EXPECT_EQ(eval_op(Op::And, 0b1100, 0b1010), 0b1000);
  EXPECT_EQ(eval_op(Op::Or, 0b1100, 0b1010), 0b1110);
  EXPECT_EQ(eval_op(Op::Xor, 0b1100, 0b1010), 0b0110);
  EXPECT_EQ(eval_op(Op::Neg, 5, 0), -5);
}

TEST(EvalOp, MultiplicationAssociativeModulo2_16) {
  // The functional-equivalence declaration b3mul ~ b3mul_alt relies on
  // associativity of wrap-around multiplication.
  const std::int32_t a = 12345, b = -321, c = 999, d = 77;
  const auto left = eval_op(Op::Mult, eval_op(Op::Mult, a, b),
                            eval_op(Op::Mult, c, d));
  const auto right = eval_op(
      Op::Mult, eval_op(Op::Mult, eval_op(Op::Mult, a, b), c), d);
  EXPECT_EQ(left, right);
}

TEST(Trace, DeterministicForSeed) {
  const Trace a = make_trace(3, 10, 42);
  const Trace b = make_trace(3, 10, 42);
  EXPECT_EQ(a, b);
  const Trace c = make_trace(3, 10, 43);
  EXPECT_NE(a, c);
}

TEST(Trace, CorrelatedSteps) {
  const Trace t = make_trace(1, 200, 17, 0.05);
  int big_jumps = 0;
  for (std::size_t i = 1; i < t.size(); ++i) {
    if (std::abs(t[i][0] - t[i - 1][0]) > 4000) ++big_jumps;
  }
  // Random walk with ~5% steps: consecutive samples stay close except at
  // wrap-around boundaries.
  EXPECT_LT(big_jumps, 10);
}

TEST(EvalDfg, SimpleExpression) {
  Dfg d("e", 3, 1);
  const int add = d.add_node(Op::Add);
  const int mul = d.add_node(Op::Mult);
  d.connect({kPrimaryIn, 0}, {{add, 0}});
  d.connect({kPrimaryIn, 1}, {{add, 1}});
  d.connect({kPrimaryIn, 2}, {{mul, 1}});
  d.connect({add, 0}, {{mul, 0}});
  d.connect({mul, 0}, {{kPrimaryOut, 0}});
  d.validate();
  Trace in = {{2, 3, 4}, {10, -1, 5}};
  const auto out = eval_dfg(d, nullptr, in);
  EXPECT_EQ(out[0][0], 20);
  EXPECT_EQ(out[1][0], 45);
}

TEST(EvalDfg, EdgeValuesExposed) {
  Dfg d("e", 2, 1);
  const int add = d.add_node(Op::Add);
  d.connect({kPrimaryIn, 0}, {{add, 0}});
  d.connect({kPrimaryIn, 1}, {{add, 1}});
  const int sum = d.connect({add, 0}, {{kPrimaryOut, 0}});
  d.validate();
  const auto ev = eval_dfg_edges(d, nullptr, {{7, 8}});
  EXPECT_EQ(ev[0][static_cast<std::size_t>(sum)], 15);
}

TEST(EvalDfg, HierarchicalWithResolver) {
  const Library lib = default_library();
  const Benchmark bench = make_benchmark("test1", lib);
  const BehaviorResolver res = [&](const std::string& name) -> const Dfg* {
    return bench.design.has_behavior(name) ? &bench.design.behavior(name)
                                           : nullptr;
  };
  const Trace in = make_trace(8, 4, 1);
  const auto out = eval_dfg(bench.design.top(), res, in);
  ASSERT_EQ(out.size(), 4u);
  ASSERT_EQ(out[0].size(), 2u);
  // Output 1 is seqmac(x4..x7) = ((x4+x5)*x6)+x7.
  for (std::size_t t = 0; t < in.size(); ++t) {
    const auto expect = eval_op(
        Op::Add,
        eval_op(Op::Mult, eval_op(Op::Add, in[t][4], in[t][5]), in[t][6]),
        in[t][7]);
    EXPECT_EQ(out[t][1], expect);
  }
}

TEST(EvalDfg, UnresolvedBehaviorThrows) {
  Dfg d("h", 1, 1);
  const int h = d.add_hier_node("ghost", 1, 1);
  d.connect({kPrimaryIn, 0}, {{h, 0}});
  d.connect({h, 0}, {{kPrimaryOut, 0}});
  d.validate();
  EXPECT_THROW(eval_dfg(d, [](const std::string&) -> const Dfg* { return nullptr; },
                        {{1}}),
               std::logic_error);
}

class EquivalentDfgValues : public ::testing::TestWithParam<int> {};

/// Property: the declared-equivalent DFG pairs produce identical outputs
/// on random inputs.
TEST_P(EquivalentDfgValues, PairsAgree) {
  const Library lib = default_library();
  const Benchmark bench = make_benchmark("test1", lib);
  const Trace in = make_trace(4, 16, static_cast<std::uint64_t>(GetParam()));
  for (const auto& [a, b] : std::vector<std::pair<std::string, std::string>>{
           {"b3mul", "b3mul_alt"}, {"addtree", "addtree_seq"}}) {
    const auto oa = eval_dfg(bench.design.behavior(a), nullptr, in);
    const auto ob = eval_dfg(bench.design.behavior(b), nullptr, in);
    EXPECT_EQ(oa, ob) << a << " vs " << b << " seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EquivalentDfgValues, ::testing::Range(1, 9));

}  // namespace
}  // namespace hsyn
