// Property-based sweeps: random DFGs flow through the whole stack
// (initial solution -> scheduling -> random sharing mutations -> RTL
// simulation) and every invariant must hold at every step.
#include <gtest/gtest.h>

#include "benchmarks/benchmarks.h"
#include "embed/embedder.h"
#include "power/rtlsim.h"
#include "rtl/cost.h"
#include "sched/scheduler.h"
#include "synth/initial.h"
#include "synth/moves.h"
#include "random_dfg.h"
#include "util/fmt.h"
#include "util/rng.h"

namespace hsyn {
namespace {

const OpPoint kRef{5.0, 20.0};

using testing_support::random_dfg;

class RandomDfgPipeline : public ::testing::TestWithParam<int> {};

TEST_P(RandomDfgPipeline, ScheduleSimulateAndMutate) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  const Library lib = default_library();
  Design design;
  design.add_behavior(random_dfg(seed, 8 + static_cast<int>(seed % 8)));
  const std::string top = design.behavior_names()[0];
  design.set_top(top);
  design.validate();

  SynthContext cx;
  cx.design = &design;
  cx.lib = &lib;
  cx.pt = kRef;
  cx.obj = Objective::Area;
  Datapath dp = initial_solution(design.top(), top, cx);
  const SchedResult sr = schedule_datapath(dp, lib, kRef, kNoDeadline);
  ASSERT_TRUE(sr.ok) << sr.reason;
  cx.deadline = sr.makespan * 3;
  ASSERT_TRUE(schedule_datapath(dp, lib, kRef, cx.deadline).ok);

  const Trace trace = make_trace(design.top().num_inputs(), 8, seed + 1);
  {
    const RtlSimResult r = simulate_rtl(dp, 0, trace, lib, kRef);
    ASSERT_TRUE(r.ok) << (r.violations.empty() ? "?" : r.violations[0]);
  }

  // Apply random *valid* sharing/splitting mutations through the move
  // machinery; every accepted move must keep the design correct.
  Rng rng(seed * 31 + 7);
  Datapath cur = dp;
  for (int step = 0; step < 3; ++step) {
    Move m;
    if (rng.below(2) == 0) {
      m = best_sharing_move(cur, cx);
    } else {
      m = best_splitting_move(cur, cx);
    }
    if (!m.valid) continue;
    cur = m.result;
    EXPECT_NO_THROW(cur.validate(lib));
    EXPECT_LE(cur.behaviors[0].makespan, cx.deadline);
    const RtlSimResult r = simulate_rtl(cur, 0, trace, lib, kRef);
    ASSERT_TRUE(r.ok) << "seed " << seed << " step " << step << ": "
                      << (r.violations.empty() ? "?" : r.violations[0]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDfgPipeline, ::testing::Range(1, 21));

class RandomEmbedding : public ::testing::TestWithParam<int> {};

TEST_P(RandomEmbedding, MergedModulesStayCorrect) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  const Library lib = default_library();
  Design design;
  design.add_behavior(random_dfg(seed * 2 + 100, 6));
  design.add_behavior(random_dfg(seed * 2 + 101, 7));
  const std::string na = design.behavior_names()[0];
  const std::string nb = design.behavior_names()[1];

  Datapath a = make_template_fast(design.behavior(na), lib);
  Datapath b = make_template_fast(design.behavior(nb), lib);
  ASSERT_TRUE(schedule_datapath(a, lib, kRef, kNoDeadline).ok);
  ASSERT_TRUE(schedule_datapath(b, lib, kRef, kNoDeadline).ok);
  const double sum = area_of(a, lib, false).total() + area_of(b, lib, false).total();

  auto merged = embed_modules(a, b, lib, kRef, nullptr);
  ASSERT_TRUE(merged.has_value());
  ASSERT_TRUE(schedule_datapath(*merged, lib, kRef, kNoDeadline).ok);
  EXPECT_NO_THROW(merged->validate(lib));
  EXPECT_LT(area_of(*merged, lib, false).total(), sum);

  for (const std::string& name : {na, nb}) {
    const int bi = merged->find_behavior(name);
    ASSERT_GE(bi, 0);
    const Trace trace =
        make_trace(design.behavior(name).num_inputs(), 6, seed + 3);
    const RtlSimResult r = simulate_rtl(*merged, bi, trace, lib, kRef, false);
    EXPECT_TRUE(r.ok) << name << ": "
                      << (r.violations.empty() ? "?" : r.violations[0]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomEmbedding, ::testing::Range(1, 13));

class ScheduleMonotonicity : public ::testing::TestWithParam<int> {};

/// Property: relaxing the deadline never makes scheduling fail, and the
/// makespan is independent of the deadline (ASAP semantics).
TEST_P(ScheduleMonotonicity, DeadlineRelaxationSafe) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam()) + 500;
  const Library lib = default_library();
  Design design;
  design.add_behavior(random_dfg(seed, 10));
  const std::string top = design.behavior_names()[0];
  design.set_top(top);
  SynthContext cx;
  cx.design = &design;
  cx.lib = &lib;
  cx.pt = kRef;
  Datapath dp = initial_solution(design.top(), top, cx);
  const SchedResult base = schedule_datapath(dp, lib, kRef, kNoDeadline);
  ASSERT_TRUE(base.ok);
  for (int extra = 0; extra < 3; ++extra) {
    Datapath copy = dp;
    const SchedResult r =
        schedule_datapath(copy, lib, kRef, base.makespan + extra);
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.makespan, base.makespan);
  }
  Datapath copy = dp;
  EXPECT_FALSE(schedule_datapath(copy, lib, kRef, base.makespan - 1).ok);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScheduleMonotonicity, ::testing::Range(1, 11));

}  // namespace
}  // namespace hsyn
