#include <gtest/gtest.h>

#include "library/profile.h"

namespace hsyn {
namespace {

/// Paper Example 1, verbatim: Profile(RTL3, DFG3) = {0,0,2,4,7}; inputs
/// arriving at {2,5,3,7} start the module at max(2-0, 5-0, 3-2, 7-4) = 5
/// and produce the output at 12.
TEST(Profile, PaperExample1Numbers) {
  Profile p;
  p.in = {0, 0, 2, 4};
  p.out = {7};
  EXPECT_EQ(p.start_time({2, 5, 3, 7}), 5);
  const auto t = p.output_times({2, 5, 3, 7});
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t[0], 12);
}

TEST(Profile, AllInputsAtZeroStartImmediately) {
  Profile p;
  p.in = {0, 0, 2, 4};
  p.out = {7};
  EXPECT_EQ(p.start_time({0, 0, 0, 0}), 0);
  EXPECT_EQ(p.output_times({0, 0, 0, 0})[0], 7);
}

TEST(Profile, StartNeverNegative) {
  Profile p;
  p.in = {3, 3};
  p.out = {5};
  EXPECT_EQ(p.start_time({0, 0}), 0);  // inputs early: wait at 0
}

TEST(Profile, MakespanIsMaxOutput) {
  Profile p;
  p.in = {0, 0};
  p.out = {3, 9, 6};
  EXPECT_EQ(p.makespan(), 9);
}

TEST(Profile, ArityMismatchThrows) {
  Profile p;
  p.in = {0, 0};
  p.out = {1};
  EXPECT_THROW((void)p.start_time({0}), std::logic_error);
}

TEST(Environment, AdmitsFittingProfile) {
  // Example 2's relaxation: RTL2 currently has profile {0,0,0,0,6,3} (4
  // inputs, 2 outputs) and the environment allows {.., 9, 9}.
  Environment env;
  env.arrival = {0, 0, 0, 0};
  env.deadline = {9, 9};
  Profile current;
  current.in = {0, 0, 0, 0};
  current.out = {6, 3};
  EXPECT_TRUE(env.admits(current));
  EXPECT_EQ(env.slack(current), 3);

  Profile relaxed;
  relaxed.in = {0, 0, 0, 0};
  relaxed.out = {9, 9};
  EXPECT_TRUE(env.admits(relaxed));
  EXPECT_EQ(env.slack(relaxed), 0);

  Profile too_slow;
  too_slow.in = {0, 0, 0, 0};
  too_slow.out = {10, 9};
  EXPECT_FALSE(env.admits(too_slow));
  EXPECT_EQ(env.slack(too_slow), -1);
}

TEST(Environment, LateArrivalsShiftProduction) {
  Environment env;
  env.arrival = {4, 0};
  env.deadline = {10};
  Profile p;
  p.in = {0, 0};
  p.out = {5};
  // Start at 4 -> output at 9 -> slack 1.
  EXPECT_EQ(env.slack(p), 1);
}

class ProfileStartMonotonic
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

/// Property: delaying any arrival never lets the module start earlier.
TEST_P(ProfileStartMonotonic, DelayingArrivalsNeverStartsEarlier) {
  const auto [a0, a1, d0, d1] = GetParam();
  Profile p;
  p.in = {1, 2};
  p.out = {4};
  const int base = p.start_time({a0, a1});
  const int delayed = p.start_time({a0 + d0, a1 + d1});
  EXPECT_GE(delayed, base);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ProfileStartMonotonic,
    ::testing::Combine(::testing::Values(0, 2, 5), ::testing::Values(0, 1, 7),
                       ::testing::Values(0, 1, 3), ::testing::Values(0, 2)));

}  // namespace
}  // namespace hsyn
