// Pipelined functional units and the fir16 extension benchmark.
#include <gtest/gtest.h>

#include "benchmarks/benchmarks.h"
#include "embed/embedder.h"
#include "power/rtlsim.h"
#include "sched/scheduler.h"
#include "synth/initial.h"
#include "synth/synthesizer.h"

namespace hsyn {
namespace {

const OpPoint kRef{5.0, 20.0};

TEST(Pipelined, SharedPipelinedMultStartsEveryCycle) {
  const Library lib = default_library();
  // Four independent mults on one pipelined multiplier: starts 1 cycle
  // apart instead of 3.
  Dfg d("pm", 8, 4);
  for (int i = 0; i < 4; ++i) {
    const int m = d.add_node(Op::Mult);
    d.connect({kPrimaryIn, 2 * i}, {{m, 0}});
    d.connect({kPrimaryIn, 2 * i + 1}, {{m, 1}});
    d.connect({m, 0}, {{kPrimaryOut, i}});
  }
  d.validate();
  Design design;
  design.add_behavior(std::move(d));
  design.set_top("pm");
  SynthContext cx;
  cx.design = &design;
  cx.lib = &lib;
  cx.pt = kRef;
  Datapath dp = initial_solution(design.top(), "pm", cx);
  const int p_type = lib.find_fu("mult1p");
  ASSERT_GE(p_type, 0);
  for (FuUnit& fu : dp.fus) fu.type = p_type;
  BehaviorImpl& bi = dp.behaviors[0];
  for (Invocation& inv : bi.invs) inv.unit.idx = 0;  // all on one unit
  dp.prune_unused();
  const SchedResult r = schedule_datapath(dp, lib, kRef, kNoDeadline);
  ASSERT_TRUE(r.ok) << r.reason;
  // Starts at 0,1,2,3; last result 3 cycles after its start.
  EXPECT_EQ(r.makespan, 6);

  const Trace trace = make_trace(8, 16, 3);
  const RtlSimResult sim = simulate_rtl(dp, 0, trace, lib, kRef);
  EXPECT_TRUE(sim.ok) << (sim.violations.empty() ? "" : sim.violations[0]);
}

TEST(Pipelined, NonPipelinedEquivalentSerializesFully) {
  const Library lib = default_library();
  Dfg d("pm", 8, 4);
  for (int i = 0; i < 4; ++i) {
    const int m = d.add_node(Op::Mult);
    d.connect({kPrimaryIn, 2 * i}, {{m, 0}});
    d.connect({kPrimaryIn, 2 * i + 1}, {{m, 1}});
    d.connect({m, 0}, {{kPrimaryOut, i}});
  }
  d.validate();
  Design design;
  design.add_behavior(std::move(d));
  design.set_top("pm");
  SynthContext cx;
  cx.design = &design;
  cx.lib = &lib;
  cx.pt = kRef;
  Datapath dp = initial_solution(design.top(), "pm", cx);
  BehaviorImpl& bi = dp.behaviors[0];
  for (Invocation& inv : bi.invs) inv.unit.idx = 0;
  dp.prune_unused();
  const SchedResult r = schedule_datapath(dp, lib, kRef, kNoDeadline);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.makespan, 12);  // 4 x 3 cycles back-to-back
}

TEST(Pipelined, MergeRequiresMatchingPipelineFlag) {
  const Library lib = default_library();
  const OpPoint pt = kRef;
  FuMergeUsage plain;
  plain.ops = {Op::Mult};
  plain.cycles = 3;
  plain.pipelined = false;
  FuMergeUsage piped = plain;
  piped.pipelined = true;
  EXPECT_EQ(merged_fu_type(plain, piped, lib, pt), -1);
  EXPECT_EQ(lib.fu(merged_fu_type(piped, piped, lib, pt)).name, "mult1p");
}

TEST(Fir16, BuildsAndSynthesizes) {
  const Library lib = default_library();
  const Benchmark bench = make_benchmark("fir16", lib);
  EXPECT_EQ(bench.design.flattened_size("fir16"), 31);
  EXPECT_EQ(bench.design.equivalents("dot4").size(), 2u);

  const double ts = 2.0 * min_sample_period_ns(bench.design, lib);
  for (const Objective obj : {Objective::Area, Objective::Power}) {
    SynthOptions opts;
    opts.max_passes = 3;
    opts.max_candidates = 12;
    const SynthResult r = synthesize(bench.design, lib, &bench.clib, ts, obj,
                                     Mode::Hierarchical, opts);
    ASSERT_TRUE(r.ok) << r.fail_reason;
    const Trace trace = make_trace(32, 12, 5);
    const RtlSimResult sim = simulate_rtl(r.dp, 0, trace, lib, r.pt);
    EXPECT_TRUE(sim.ok) << (sim.violations.empty() ? "" : sim.violations[0]);
  }
}

TEST(Fir16, DotVariantsAgree) {
  const Trace in = make_trace(8, 32, 77);
  const Dfg a = make_dot4();
  const Dfg b = make_dot4_seq();
  EXPECT_EQ(eval_dfg(a, nullptr, in), eval_dfg(b, nullptr, in));
}

TEST(Fir16, AreaModeSharesDotProducts) {
  // Four identical dot-product children invite instance reuse; at a
  // relaxed deadline the area optimizer should keep fewer than four
  // complex instances.
  const Library lib = default_library();
  const Benchmark bench = make_benchmark("fir16", lib);
  const double ts = 4.0 * min_sample_period_ns(bench.design, lib);
  SynthOptions opts;
  opts.max_passes = 4;
  const SynthResult r = synthesize(bench.design, lib, &bench.clib, ts,
                                   Objective::Area, Mode::Hierarchical, opts);
  ASSERT_TRUE(r.ok);
  int children = 0;
  for (const ChildUnit& c : r.dp.children) {
    children += c.impl ? 1 : 0;
  }
  EXPECT_LT(children, 4);
}

}  // namespace
}  // namespace hsyn
