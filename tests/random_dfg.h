// Shared random-DFG generator for the property suites.
#pragma once

#include "dfg/dfg.h"
#include "util/fmt.h"
#include "util/rng.h"

namespace hsyn::testing_support {

/// Random layered DAG of arithmetic operations with all dangling values
/// routed to primary outputs.
inline Dfg random_dfg(std::uint64_t seed, int num_ops) {
  Rng rng(seed);
  const int num_inputs = 3 + static_cast<int>(rng.below(4));
  Dfg d(strf("rand%llu", static_cast<unsigned long long>(seed)), num_inputs, 0);
  std::vector<int> values;
  for (int i = 0; i < num_inputs; ++i) {
    values.push_back(d.connect({kPrimaryIn, i}, {}));
  }
  static const Op kOps[] = {Op::Add, Op::Sub, Op::Mult, Op::Add, Op::Mult};
  for (int i = 0; i < num_ops; ++i) {
    const Op op = kOps[rng.below(5)];
    const int n = d.add_node(op);
    const int a = values[static_cast<std::size_t>(rng.below(values.size()))];
    const int b = values[static_cast<std::size_t>(rng.below(values.size()))];
    d.add_consumer(a, {n, 0});
    d.add_consumer(b, {n, 1});
    values.push_back(d.connect({n, 0}, {}));
  }
  int outs = 0;
  for (const Edge& e : d.edges()) {
    if (e.dsts.empty()) d.add_consumer(e.id, {kPrimaryOut, outs++});
  }
  d.set_io(num_inputs, outs);
  d.validate();
  return d;
}

}  // namespace hsyn::testing_support
