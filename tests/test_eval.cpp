// The evaluation pipeline (src/eval/): sharded LRU cache semantics, the
// process-wide EvalEngine, dirty-region incremental connectivity, the
// bounded template cache, stats integration, and the regression for the
// old pointer-keyed DFG evaluation memo.
//
// The EvalCacheStress suite hammers the shared cache from many raw
// threads; CI runs it under ThreadSanitizer.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "benchmarks/benchmarks.h"
#include "eval/cache.h"
#include "eval/engine.h"
#include "power/estimator.h"
#include "power/replay.h"
#include "power/trace.h"
#include "rtl/cost.h"
#include "runtime/stats.h"
#include "sched/scheduler.h"
#include "synth/initial.h"
#include "synth/moves.h"

namespace hsyn {
namespace {

using eval::Key;
using eval::ShardedLruCache;

const OpPoint kRef{5.0, 20.0};

// ---- ShardedLruCache ----------------------------------------------------

TEST(ShardedLruCache, MissThenHitReturnsStoredValue) {
  ShardedLruCache<int> c(1 << 20);
  const Key k{1, 2, 3};
  EXPECT_FALSE(c.get(k).has_value());
  c.put(k, 42, 8);
  const auto v = c.get(k);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 42);
  const auto n = c.counters();
  EXPECT_EQ(n.hits, 1u);
  EXPECT_EQ(n.misses, 1u);
  EXPECT_EQ(n.insertions, 1u);
  EXPECT_EQ(n.entries, 1u);
  EXPECT_GT(n.bytes, 0u);
}

TEST(ShardedLruCache, KeyFieldsAreComparedExactly) {
  // Permutations of one triple are distinct keys: the fields are never
  // pre-mixed into a single word.
  ShardedLruCache<int> c(1 << 20);
  c.put({1, 2, 3}, 1, 8);
  c.put({3, 2, 1}, 2, 8);
  c.put({2, 1, 3}, 3, 8);
  EXPECT_EQ(*c.get({1, 2, 3}), 1);
  EXPECT_EQ(*c.get({3, 2, 1}), 2);
  EXPECT_EQ(*c.get({2, 1, 3}), 3);
}

TEST(ShardedLruCache, PutRefreshesExistingKeyWithoutNewEntry) {
  ShardedLruCache<int> c(1 << 20);
  const Key k{5, 0, 0};
  c.put(k, 1, 8);
  c.put(k, 2, 8);
  EXPECT_EQ(*c.get(k), 2);
  const auto n = c.counters();
  EXPECT_EQ(n.insertions, 1u);
  EXPECT_EQ(n.entries, 1u);
}

TEST(ShardedLruCache, EvictsUnderPressureButKeepsNewest) {
  // Zero budget: every shard still keeps its most recent entry (an
  // oversized value is admitted alone rather than thrashing).
  ShardedLruCache<int> c(0);
  for (std::uint64_t i = 0; i < 100; ++i) {
    c.put({i, 0, 0}, static_cast<int>(i), 64);
  }
  const auto n = c.counters();
  EXPECT_LE(n.entries, 16u);  // at most one survivor per shard
  EXPECT_GE(n.evictions, 100u - 16u);
}

TEST(ShardedLruCache, OversizedEntryIsAdmitted) {
  ShardedLruCache<int> c(256);
  c.put({7, 7, 7}, 7, 1 << 20);
  EXPECT_TRUE(c.get({7, 7, 7}).has_value());
}

TEST(ShardedLruCache, SetCapacityEvictsImmediately) {
  ShardedLruCache<int> c(1 << 20);
  for (std::uint64_t i = 0; i < 64; ++i) c.put({i, 0, 0}, 1, 1024);
  EXPECT_EQ(c.counters().entries, 64u);
  c.set_capacity(0);
  EXPECT_LE(c.counters().entries, 16u);
}

TEST(ShardedLruCache, ClearDropsEntriesKeepsCounters) {
  ShardedLruCache<int> c(1 << 20);
  c.put({1, 1, 1}, 1, 8);
  c.get({1, 1, 1});
  c.clear();
  EXPECT_FALSE(c.get({1, 1, 1}).has_value());
  const auto n = c.counters();
  EXPECT_EQ(n.entries, 0u);
  EXPECT_EQ(n.bytes, 0u);
  EXPECT_EQ(n.hits, 1u);  // history survives explicit invalidation
}

TEST(ShardedLruCache, CrossThreadHitIsCounted) {
  ShardedLruCache<int> c(1 << 20);
  c.put({9, 9, 9}, 1, 8);
  EXPECT_TRUE(c.get({9, 9, 9}).has_value());  // same-thread hit
  EXPECT_EQ(c.counters().cross_thread_hits, 0u);
  std::thread t([&c] { EXPECT_TRUE(c.get({9, 9, 9}).has_value()); });
  t.join();
  EXPECT_EQ(c.counters().cross_thread_hits, 1u);
}

// ---- Trace fingerprints -------------------------------------------------

TEST(TraceFingerprint, SensitiveToContentAndShape) {
  const Trace t = make_trace(3, 8, 11);
  EXPECT_EQ(trace_fingerprint(t), trace_fingerprint(Trace(t)));

  Trace bumped = t;
  bumped[0][0] ^= 1;
  EXPECT_NE(trace_fingerprint(bumped), trace_fingerprint(t));

  Trace shorter = t;
  shorter.pop_back();
  EXPECT_NE(trace_fingerprint(shorter), trace_fingerprint(t));

  EXPECT_NE(trace_fingerprint(make_trace(3, 8, 12)), trace_fingerprint(t));
}

// ---- DFG evaluation through the shared cache ----------------------------

std::unique_ptr<Dfg> binary_dfg(Op op) {
  auto d = std::make_unique<Dfg>("g", 2, 1);
  const int a = d->connect({kPrimaryIn, 0}, {});
  const int b = d->connect({kPrimaryIn, 1}, {});
  const int n = d->add_node(op);
  d->add_consumer(a, {n, 0});
  d->add_consumer(b, {n, 1});
  d->connect({n, 0}, {{kPrimaryOut, 0}});
  d->validate();
  return d;
}

const BehaviorResolver kNoHier = [](const std::string&) -> const Dfg* {
  return nullptr;
};

TEST(EvalEngine, DfgAddressReuseCannotAliasCachedValues) {
  // Regression: the pre-refactor evaluation memo keyed entries by the raw
  // `const Dfg*`, so a new graph allocated at a recycled address was
  // served the dead graph's values. The shared cache keys by content
  // hash; rebuilding different same-shape graphs in a loop (the
  // allocator overwhelmingly reuses the freed block) must evaluate each
  // one to its own semantics.
  const Trace tr = make_trace(2, 6, 13);
  static const Op kOps[] = {Op::Add, Op::Mult, Op::Sub, Op::Xor};
  for (int round = 0; round < 12; ++round) {
    const Op op = kOps[round % 4];
    const auto d = binary_dfg(op);
    const auto outs = eval_dfg(*d, kNoHier, tr);
    ASSERT_EQ(outs.size(), tr.size());
    for (std::size_t s = 0; s < tr.size(); ++s) {
      EXPECT_EQ(outs[s][0], eval_op(op, tr[s][0], tr[s][1]))
          << op_name(op) << " round " << round << " sample " << s;
    }
  }
}

TEST(EvalEngine, SharedEdgeValuesAreMemoized) {
  const auto d = binary_dfg(Op::Add);
  const Trace tr = make_trace(2, 6, 17);
  const auto p1 = eval_dfg_edges_shared(*d, kNoHier, tr);
  const auto p2 = eval_dfg_edges_shared(*d, kNoHier, tr);
  EXPECT_EQ(p1.get(), p2.get());  // second call hits: same allocation
  const auto rows = eval_dfg_edges(*d, kNoHier, tr);
  ASSERT_EQ(rows.size(), tr.size());
  for (std::size_t t = 0; t < rows.size(); ++t) {
    ASSERT_EQ(rows[t].size(), static_cast<std::size_t>(p1->num_edges()));
    for (int e = 0; e < p1->num_edges(); ++e) {
      EXPECT_EQ(rows[t][static_cast<std::size_t>(e)], p1->at(e, t));
    }
  }
}

// ---- EvalEngine determinism ---------------------------------------------

struct PaulinFixture {
  Library lib = default_library();
  Design design;
  Datapath dp;

  PaulinFixture() {
    design.add_behavior(make_paulin_iter("paulin"));
    design.set_top("paulin");
    design.validate();
    SynthContext cx;
    cx.design = &design;
    cx.lib = &lib;
    cx.pt = kRef;
    dp = initial_solution(design.top(), "paulin", cx);
    schedule_datapath(dp, lib, kRef, kNoDeadline);
  }
};

TEST(EvalEngine, CachedCostsBitIdenticalToRecompute) {
  PaulinFixture f;
  const Trace tr = make_trace(f.dp.behaviors[0].dfg->num_inputs(), 16, 5);
  eval::EvalEngine& eng = eval::EvalEngine::instance();

  eng.clear();
  const EnergyBreakdown e1 = energy_of(f.dp, 0, tr, f.lib, kRef);
  const EnergyBreakdown e2 = energy_of(f.dp, 0, tr, f.lib, kRef);  // hit
  eng.clear();
  const EnergyBreakdown e3 = energy_of(f.dp, 0, tr, f.lib, kRef);  // recompute
  for (const EnergyBreakdown* e : {&e2, &e3}) {
    EXPECT_EQ(e->fu, e1.fu);
    EXPECT_EQ(e->reg, e1.reg);
    EXPECT_EQ(e->mux, e1.mux);
    EXPECT_EQ(e->wire, e1.wire);
    EXPECT_EQ(e->ctrl, e1.ctrl);
    EXPECT_EQ(e->children, e1.children);
  }

  const AreaBreakdown a1 = area_of(f.dp, f.lib);
  eng.clear();
  const AreaBreakdown a2 = area_of(f.dp, f.lib);
  EXPECT_EQ(a1.total(), a2.total());

  // Different operating points must not share energy entries.
  const OpPoint low{3.3, 40.0};
  schedule_datapath(f.dp, f.lib, low, kNoDeadline);
  const EnergyBreakdown el = energy_of(f.dp, 0, tr, f.lib, low);
  EXPECT_NE(el.total(), e1.total());
}

TEST(EvalEngine, ConnectivityIsSharedPerFingerprint) {
  PaulinFixture f;
  eval::EvalEngine& eng = eval::EvalEngine::instance();
  const auto c1 = eng.connectivity(f.dp);
  const auto c2 = eng.connectivity(f.dp);
  EXPECT_EQ(c1.get(), c2.get());  // hit: same shared row set
  EXPECT_TRUE(*c1 == connectivity_of(f.dp));
}

TEST(Library, MutationRefreshesUidCopiesKeepIt) {
  // The library half of every cost key: copies are content-equal and
  // share the uid; any mutating access draws a fresh process-wide id, so
  // stale costs can never be served after a library edit.
  const Library lib = default_library();
  Library copy = lib;
  EXPECT_EQ(copy.uid(), lib.uid());
  const std::uint64_t before = copy.uid();
  copy.costs_mut();
  EXPECT_NE(copy.uid(), before);
  EXPECT_EQ(lib.uid(), before);  // the source is untouched
  Library other = default_library();
  EXPECT_NE(other.uid(), lib.uid());
}

// ---- Dirty-region incremental connectivity ------------------------------

TEST(RefreshConnectivity, UnchangedBindingReproducesBase) {
  PaulinFixture f;
  const Connectivity base = connectivity_of(f.dp);
  DirtyRegion dirty;
  dirty.binding_changed = false;
  EXPECT_TRUE(refresh_connectivity(f.dp, base, dirty) == base);
}

TEST(RefreshConnectivity, RegisterMoveHintMatchesFullRecompute) {
  PaulinFixture f;
  const Connectivity base = connectivity_of(f.dp);
  const BehaviorImpl& bi = f.dp.behaviors[0];
  int e = -1;
  for (std::size_t i = 0; i < bi.edge_reg.size(); ++i) {
    if (bi.edge_reg[i] >= 0) {
      e = static_cast<int>(i);
      break;
    }
  }
  ASSERT_GE(e, 0);

  // split_reg's mutation: the edge moves to a fresh register.
  Datapath cand = f.dp;
  const int old_reg = cand.behaviors[0].edge_reg[static_cast<std::size_t>(e)];
  cand.behaviors[0].edge_reg[static_cast<std::size_t>(e)] =
      static_cast<int>(cand.regs.size());
  cand.regs.push_back({});
  cand.invalidate_fingerprint();

  DirtyRegion dirty;  // the appended register is implicitly dirty
  dirty.regs.push_back(old_reg);
  for (const PortRef& d : bi.dfg->edge(e).dsts) {
    if (d.node < 0) continue;
    const int iv = bi.inv_of(d.node);
    if (iv < 0) continue;
    const UnitRef u = bi.invs[static_cast<std::size_t>(iv)].unit;
    (u.kind == UnitRef::Kind::Fu ? dirty.fus : dirty.children).push_back(u.idx);
  }
  EXPECT_TRUE(refresh_connectivity(cand, base, dirty) == connectivity_of(cand));
}

TEST(RefreshConnectivity, UnitSplitHintMatchesFullRecompute) {
  PaulinFixture f;
  const Connectivity base = connectivity_of(f.dp);
  const BehaviorImpl& bi = f.dp.behaviors[0];
  int iv = -1;
  for (std::size_t i = 0; i < bi.invs.size(); ++i) {
    if (bi.invs[i].unit.kind == UnitRef::Kind::Fu) {
      iv = static_cast<int>(i);
      break;
    }
  }
  ASSERT_GE(iv, 0);

  // split_fu's mutation: the invocation moves to an appended unit copy.
  Datapath cand = f.dp;
  const Invocation& inv = bi.invs[static_cast<std::size_t>(iv)];
  const int old_fu = inv.unit.idx;
  cand.behaviors[0].invs[static_cast<std::size_t>(iv)].unit.idx =
      static_cast<int>(cand.fus.size());
  cand.fus.push_back(cand.fus[static_cast<std::size_t>(old_fu)]);
  cand.invalidate_fingerprint();

  DirtyRegion dirty;
  dirty.fus.push_back(old_fu);
  for (const int nid : inv.nodes) {
    const Node& n = bi.dfg->node(nid);
    for (int p = 0; p < n.num_outputs; ++p) {
      const int oe = bi.dfg->output_edge(nid, p);
      if (oe < 0) continue;
      const int r = bi.edge_reg[static_cast<std::size_t>(oe)];
      if (r >= 0) dirty.regs.push_back(r);
    }
  }
  EXPECT_TRUE(refresh_connectivity(cand, base, dirty) == connectivity_of(cand));
}

// ---- TemplateCache ------------------------------------------------------

TEST(TemplateCache, BoundedWithLruEviction) {
  TemplateCache tc;
  const Datapath proto("tmpl");
  for (int i = 0; i < 70; ++i) tc.put("k" + std::to_string(i), proto);
  EXPECT_EQ(tc.size(), 64u);  // the bound held: k0..k5 evicted
  EXPECT_FALSE(tc.get("k0").has_value());
  EXPECT_TRUE(tc.get("k69").has_value());
  ASSERT_TRUE(tc.get("k6").has_value());  // refreshes k6's recency...
  tc.put("k70", proto);
  EXPECT_TRUE(tc.get("k6").has_value());  // ...so k7 is the next victim
  EXPECT_FALSE(tc.get("k7").has_value());
}

// ---- runtime/stats integration ------------------------------------------

TEST(RuntimeStats, EvalCacheCountersAppearInSnapshot) {
  eval::EvalEngine::instance();  // ensure the sources are registered
  TemplateCache ensure_registered;
  (void)ensure_registered;
  const runtime::Stats s = runtime::stats_snapshot();
  for (const char* src :
       {"eval-energy-cache", "eval-area-cache", "eval-conn-cache",
        "eval-edge-vals-cache", "template-cache"}) {
    ASSERT_TRUE(s.counters.count(src)) << src;
    EXPECT_TRUE(s.counters.at(src).count("hits")) << src;
    EXPECT_NE(s.to_string().find(src), std::string::npos) << src;
  }
}

// ---- Concurrency stress (run under TSan in CI) --------------------------

TEST(EvalCacheStress, SharedCacheTortureAcrossThreads) {
  // 8 raw threads hammer one small cache with overlapping keys while one
  // thread resizes and another clears. Every value is a pure function of
  // its key, so any hit observing a foreign value is corruption.
  ShardedLruCache<std::uint64_t> cache(1 << 16);
  constexpr int kThreads = 8;
  constexpr int kIters = 3000;
  constexpr std::uint64_t kKeys = 128;
  const auto value_of = [](const Key& k) {
    return k.structure * 1000003ull + k.trace;
  };
  std::atomic<std::uint64_t> corrupt{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        const std::uint64_t s =
            (static_cast<std::uint64_t>(i) * 13 + static_cast<std::uint64_t>(t) * 7) % kKeys;
        const Key k{s, s * 31, 77};
        if (const auto v = cache.get(k)) {
          if (*v != value_of(k)) corrupt.fetch_add(1);
        } else {
          cache.put(k, value_of(k), 32 + (s % 5) * 16);
        }
        if (t == 0 && i % 1024 == 512) cache.set_capacity(1 << 14);
        if (t == 0 && i % 1024 == 0) cache.set_capacity(1 << 16);
        if (t == 1 && i % 1500 == 749) cache.clear();
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(corrupt.load(), 0u);
  const auto n = cache.counters();
  EXPECT_EQ(n.hits + n.misses,
            static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_GT(n.cross_thread_hits, 0u);  // the cache really is shared
}

TEST(EvalCacheStress, EngineServesConcurrentCostQueries) {
  // Area and connectivity queries on one shared datapath from raw
  // threads, with periodic invalidation: every answer must equal the
  // single-threaded reference exactly.
  PaulinFixture f;
  eval::EvalEngine& eng = eval::EvalEngine::instance();
  eng.clear();
  const double ref_area = area_of(f.dp, f.lib).total();
  const Connectivity ref_conn = connectivity_of(f.dp);
  std::atomic<int> wrong{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 8; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < 60; ++i) {
        if (area_of(f.dp, f.lib).total() != ref_area) wrong.fetch_add(1);
        const auto conn = eng.connectivity(f.dp);
        if (!(*conn == ref_conn)) wrong.fetch_add(1);
        if (t == 0 && i % 16 == 7) eng.clear();
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(wrong.load(), 0);
}

}  // namespace
}  // namespace hsyn
