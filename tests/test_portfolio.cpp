// Portfolio search tests (src/synth/portfolio.h, src/synth/strategy.h):
//
//  * the strategy spec language round-trips and rejects malformed input,
//  * default_portfolio() always leads with the exact baseline replica,
//  * portfolio_synthesize() is bit-identical at 1/2/8 threads,
//  * the best-of can never lose to single-seed synthesize() and ties
//    break toward the baseline (strategy 0),
//  * a tripped CancelToken yields best-so-far exactly once (via the
//    serve::run_job pipeline, the way the daemon exercises it),
//  * the move ledger's per-strategy stamps are thread-count invariant,
//  * a solo job's report is bit-identical while a portfolio hammers the
//    shared pool and caches from another thread (TSan stress).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "benchmarks/benchmarks.h"
#include "library/library.h"
#include "obs/ledger.h"
#include "runtime/cancel.h"
#include "runtime/thread_pool.h"
#include "serve/jobs.h"
#include "synth/portfolio.h"
#include "synth/strategy.h"
#include "synth/synthesizer.h"

namespace hsyn {
namespace {

/// The small shared fixture: the "test1" benchmark at the stock laxity.
struct Bench1 {
  Library lib = default_library();
  Benchmark bench = make_benchmark("test1", lib);
  double ts = 2.2 * min_sample_period_ns(bench.design, lib);

  PortfolioResult run(const PortfolioOptions& popts,
                      const SynthOptions& opts = {}) const {
    return portfolio_synthesize(bench.design, lib, &bench.clib, ts,
                                Objective::Power, Mode::Hierarchical, opts,
                                popts);
  }
};

std::string strip_timing(const std::string& report) {
  std::string out;
  std::size_t pos = 0;
  while (pos < report.size()) {
    std::size_t eol = report.find('\n', pos);
    if (eol == std::string::npos) eol = report.size();
    const std::string line = report.substr(pos, eol - pos);
    if (line.find("synthesis time") == std::string::npos) out += line + "\n";
    pos = eol + 1;
  }
  return out;
}

TEST(Strategy, DefaultIsBaseline) {
  const SearchStrategy s;
  EXPECT_TRUE(s.is_baseline());
  EXPECT_EQ(s.name, "base");
  EXPECT_EQ(s.resynth_head, 2);
  const std::vector<MoveClass> legacy = {MoveClass::Replace, MoveClass::Share,
                                         MoveClass::Split};
  EXPECT_EQ(s.move_order, legacy);
}

TEST(Strategy, DefaultPortfolioLeadsWithBaseline) {
  for (const int n : {1, 4, 7, 10}) {
    const std::vector<SearchStrategy> p =
        default_portfolio(n, Objective::Power);
    ASSERT_EQ(static_cast<int>(p.size()), n);
    EXPECT_TRUE(p[0].is_baseline()) << "n=" << n;
    EXPECT_FALSE(p[0].adaptive);
    for (int i = 0; i < n; ++i) {
      EXPECT_EQ(p[static_cast<std::size_t>(i)].index, i);
      if (i > 0) {
        EXPECT_FALSE(p[static_cast<std::size_t>(i)].is_baseline())
            << "n=" << n << " i=" << i;
        EXPECT_TRUE(p[static_cast<std::size_t>(i)].adaptive);
      }
    }
    // No two strategies may share a name (and therefore a trajectory).
    for (int i = 0; i < n; ++i)
      for (int j = i + 1; j < n; ++j)
        EXPECT_NE(p[static_cast<std::size_t>(i)].name,
                  p[static_cast<std::size_t>(j)].name)
            << "n=" << n;
  }
  EXPECT_TRUE(default_portfolio(0, Objective::Area).empty());
}

TEST(Strategy, ParseSpecAndRoundTrip) {
  std::vector<SearchStrategy> out;
  int rounds = 1;
  std::string err;
  ASSERT_TRUE(parse_strategies(
      "rounds=3;preset=base;"
      "name=mine,order=cad,vdd=desc,clocks=desc,schedule=area-first,warm=2,"
      "seed=99,split=always,passes=5,moves=11,depth=3,resynth-head=4,"
      "adaptive=1",
      Objective::Power, &out, &rounds, &err))
      << err;
  EXPECT_EQ(rounds, 3);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_TRUE(out[0].is_baseline());
  const SearchStrategy& m = out[1];
  EXPECT_EQ(m.name, "mine");
  const std::vector<MoveClass> cad = {MoveClass::Share, MoveClass::Replace,
                                      MoveClass::Split};
  EXPECT_EQ(m.move_order, cad);
  EXPECT_TRUE(m.reverse_vdds);
  EXPECT_TRUE(m.reverse_clocks);
  EXPECT_EQ(m.schedule, ObjSchedule::AreaFirst);
  EXPECT_EQ(m.warm_passes, 2);
  EXPECT_EQ(m.seed_offset, 99u);
  EXPECT_TRUE(m.always_split);
  EXPECT_EQ(m.max_passes, 5);
  EXPECT_EQ(m.max_moves_per_pass, 11);
  EXPECT_EQ(m.max_resynth_depth, 3);
  EXPECT_EQ(m.resynth_head, 4);
  EXPECT_TRUE(m.adaptive);
  EXPECT_EQ(m.index, 1);

  // strategy_to_string must reparse to the same strategy.
  std::vector<SearchStrategy> again;
  ASSERT_TRUE(parse_strategies(strategy_to_string(m), Objective::Power, &again,
                               nullptr, &err))
      << err;
  ASSERT_EQ(again.size(), 1u);
  const SearchStrategy& r = again[0];
  EXPECT_EQ(r.name, m.name);
  EXPECT_EQ(r.move_order, m.move_order);
  EXPECT_EQ(r.reverse_vdds, m.reverse_vdds);
  EXPECT_EQ(r.reverse_clocks, m.reverse_clocks);
  EXPECT_EQ(r.schedule, m.schedule);
  EXPECT_EQ(r.warm_passes, m.warm_passes);
  EXPECT_EQ(r.seed_offset, m.seed_offset);
  EXPECT_EQ(r.always_split, m.always_split);
  EXPECT_EQ(r.max_passes, m.max_passes);
  EXPECT_EQ(r.max_moves_per_pass, m.max_moves_per_pass);
  EXPECT_EQ(r.max_resynth_depth, m.max_resynth_depth);
  EXPECT_EQ(r.resynth_head, m.resynth_head);
  EXPECT_EQ(r.adaptive, m.adaptive);

  // Every stock preset renders and round-trips, too.
  for (const char* preset :
       {"base", "share-first", "rev-probe", "obj-flip", "split-happy", "deep",
        "jitter"}) {
    std::vector<SearchStrategy> p;
    ASSERT_TRUE(parse_strategies(std::string("preset=") + preset,
                                 Objective::Area, &p, nullptr, &err))
        << err;
    ASSERT_EQ(p.size(), 1u);
    std::vector<SearchStrategy> q;
    ASSERT_TRUE(parse_strategies(strategy_to_string(p[0]), Objective::Area, &q,
                                 nullptr, &err))
        << preset << ": " << err;
    EXPECT_EQ(strategy_to_string(q[0]), strategy_to_string(p[0])) << preset;
  }
}

TEST(Strategy, ParseRejectsMalformedSpecs) {
  std::vector<SearchStrategy> out;
  std::string err;
  const char* bad[] = {
      "",                      // no strategies at all
      "preset=bogus",          // unknown preset
      "order=xyz",             // unknown move-class letters
      "order=",                // empty order
      "frob=1",                // unknown key
      "vdd=up",                // bad enum
      "schedule=sideways",     // bad enum
      "warm=-1",               // negative int
      "passes=notanumber",     // not an int
      "rounds=0",              // rounds below 1
      "adaptive=yes",          // bad bool
      "name",                  // no '='
  };
  for (const char* spec : bad) {
    err.clear();
    EXPECT_FALSE(parse_strategies(spec, Objective::Power, &out, nullptr, &err))
        << "spec '" << spec << "' should have been rejected";
    EXPECT_FALSE(err.empty()) << spec;
  }
}

TEST(Portfolio, PriorMoveOrderFromStats) {
  // Zero stats: the legacy order itself (stable sort over full ties).
  ImproveStats zero;
  const std::vector<MoveClass> legacy = {MoveClass::Replace, MoveClass::Share,
                                         MoveClass::Split};
  EXPECT_EQ(prior_move_order(zero), legacy);

  // Accepted gain dominates: Share earned the most, Split second.
  ImproveStats gains;
  gains.by_class[static_cast<std::size_t>(MoveClass::Share)] = {10, 5, 100.0};
  gains.by_class[static_cast<std::size_t>(MoveClass::Split)] = {10, 9, 50.0};
  gains.by_class[static_cast<std::size_t>(MoveClass::Replace)] = {10, 1, 1.0};
  const std::vector<MoveClass> want = {MoveClass::Share, MoveClass::Split,
                                       MoveClass::Replace};
  EXPECT_EQ(prior_move_order(gains), want);

  // Equal gain: the accept rate breaks the tie.
  ImproveStats rate;
  rate.by_class[static_cast<std::size_t>(MoveClass::Replace)] = {10, 2, 5.0};
  rate.by_class[static_cast<std::size_t>(MoveClass::Split)] = {10, 8, 5.0};
  const std::vector<MoveClass> want2 = {MoveClass::Split, MoveClass::Replace,
                                        MoveClass::Share};
  EXPECT_EQ(prior_move_order(rate), want2);
}

TEST(Portfolio, NeverWorseThanSingleSeedAndBaselineReplicaExact) {
  const Bench1 f;
  const SynthResult solo =
      synthesize(f.bench.design, f.lib, &f.bench.clib, f.ts, Objective::Power,
                 Mode::Hierarchical);
  ASSERT_TRUE(solo.ok) << solo.fail_reason;

  PortfolioOptions popts;
  popts.num_strategies = 4;
  const PortfolioResult pr = f.run(popts);
  ASSERT_TRUE(pr.best.ok) << pr.best.fail_reason;
  ASSERT_EQ(pr.reports.size(), 4u);
  ASSERT_GE(pr.winner, 0);

  // Strategy 0 is an exact replica of the single-seed engine: same
  // solution doubles, bit for bit. (Its report tallies moves across
  // every probed operating point, so they bound the winner's tallies
  // from above rather than equal them.)
  const StrategyReport& base = pr.reports[0];
  ASSERT_TRUE(base.ok);
  EXPECT_TRUE(base.strategy.is_baseline());
  EXPECT_EQ(base.area, solo.area);
  EXPECT_EQ(base.power, solo.power);
  EXPECT_GE(base.stats.moves_applied, solo.stats.moves_applied);
  EXPECT_GE(base.stats.moves_kept, solo.stats.moves_kept);

  // ...so the portfolio best can never lose to single-seed.
  EXPECT_LE(pr.best.power, solo.power);

  // A one-strategy portfolio IS the single-seed engine: the returned
  // best matches solo bit for bit, including the winner's move tallies.
  PortfolioOptions one;
  one.num_strategies = 1;
  const PortfolioResult lone = f.run(one);
  ASSERT_TRUE(lone.best.ok) << lone.best.fail_reason;
  EXPECT_EQ(lone.winner, 0);
  EXPECT_EQ(lone.best.area, solo.area);
  EXPECT_EQ(lone.best.energy, solo.energy);
  EXPECT_EQ(lone.best.power, solo.power);
  EXPECT_EQ(lone.best.makespan, solo.makespan);
  EXPECT_EQ(lone.best.stats.moves_applied, solo.stats.moves_applied);
  EXPECT_EQ(lone.best.stats.moves_kept, solo.stats.moves_kept);

  // The per-class counters partition the total applied-move count.
  for (const StrategyReport& rep : pr.reports) {
    if (!rep.ok) continue;
    int applied = 0;
    for (const MoveClassCounters& k : rep.stats.by_class) applied += k.applied;
    EXPECT_EQ(applied, rep.stats.moves_applied) << rep.strategy.name;
  }
}

TEST(Portfolio, BitIdenticalAcrossThreadCounts) {
  const Bench1 f;
  PortfolioOptions popts;
  popts.num_strategies = 4;
  popts.rounds = 2;

  std::vector<PortfolioResult> runs;
  for (const int threads : {1, 2, 8}) {
    runtime::set_threads(threads);
    runs.push_back(f.run(popts));
    ASSERT_TRUE(runs.back().best.ok) << "threads=" << threads;
  }
  runtime::set_threads(0);

  const PortfolioResult& ref = runs.front();
  ASSERT_EQ(ref.reports.size(), 8u);  // 4 strategies x 2 rounds
  for (std::size_t i = 1; i < runs.size(); ++i) {
    const PortfolioResult& pr = runs[i];
    EXPECT_EQ(pr.winner, ref.winner);
    EXPECT_EQ(pr.best.area, ref.best.area);
    EXPECT_EQ(pr.best.energy, ref.best.energy);
    EXPECT_EQ(pr.best.power, ref.best.power);
    EXPECT_EQ(pr.prior_order, ref.prior_order);
    // The whole outcome table, byte for byte.
    EXPECT_EQ(pr.summary_table(), ref.summary_table());
  }
}

TEST(Portfolio, TieBreaksTowardLowestStrategyIndex) {
  const Bench1 f;
  // Two identical baselines: trajectories tie exactly, so the explicit
  // (cost, index) comparator must pick strategy 0.
  PortfolioOptions popts;
  std::string err;
  ASSERT_TRUE(parse_strategies("name=first;name=second", Objective::Power,
                               &popts.strategies, nullptr, &err))
      << err;
  const PortfolioResult pr = f.run(popts);
  ASSERT_TRUE(pr.best.ok) << pr.best.fail_reason;
  ASSERT_EQ(pr.reports.size(), 2u);
  EXPECT_EQ(pr.reports[0].cost, pr.reports[1].cost);
  EXPECT_EQ(pr.winner, 0);
  EXPECT_TRUE(pr.reports[0].winner);
  EXPECT_FALSE(pr.reports[1].winner);
}

TEST(PortfolioCancel, PreTrippedTokenFailsWithoutResult) {
  const Bench1 f;
  SynthOptions opts;
  opts.cancel = std::make_shared<runtime::CancelToken>();
  opts.cancel->request("client cancel");
  PortfolioOptions popts;
  popts.num_strategies = 2;
  const PortfolioResult pr = f.run(popts, opts);
  EXPECT_TRUE(pr.cancelled);
  EXPECT_FALSE(pr.best.ok);
  EXPECT_EQ(pr.winner, -1);
  EXPECT_EQ(pr.cancel_reason, "client cancel");
  EXPECT_EQ(pr.best.fail_reason, "cancelled before any strategy finished");
}

TEST(PortfolioCancel, MidRunReturnsBestSoFarExactlyOnce) {
  // Through run_job (the daemon's pipeline): round 1 completes, the
  // token trips on its first round-boundary progress event, round 2
  // aborts -- the outcome must carry the round-1 best with ok=true and
  // cancelled=true, and the solution appears exactly once.
  serve::JobSpec spec;
  spec.benchmark = "test1";
  spec.verify = false;
  spec.portfolio = 2;
  spec.portfolio_rounds = 3;

  serve::JobHooks hooks;
  hooks.cancel = std::make_shared<runtime::CancelToken>();
  int strategy_events = 0;
  hooks.progress = [&](const SynthProgress& ev) {
    if (ev.stage == SynthProgress::Stage::Strategy) {
      ++strategy_events;
      hooks.cancel->request("budget spent");
    }
  };
  const serve::JobOutcome out = serve::run_job(spec, hooks);
  EXPECT_TRUE(out.cancelled);
  EXPECT_EQ(out.error, "budget spent");
  ASSERT_TRUE(out.ok) << out.error;  // best-so-far, not a failure
  ASSERT_TRUE(out.result);
  EXPECT_TRUE(out.result->ok);
  EXPECT_GT(out.area, 0);
  EXPECT_GT(out.power, 0);
  // Round 1's boundary events fired; the cancelled rounds emitted none.
  EXPECT_EQ(strategy_events, 2);
  // The report shows both the completed and the cancelled rows, and no
  // third round ever started.
  EXPECT_NE(out.report.find("cancelled"), std::string::npos);
  EXPECT_EQ(out.report.find("synthesis failed"), std::string::npos);
}

TEST(PortfolioLedger, StrategyStampsThreadCountInvariant) {
  const Bench1 f;
  obs::MoveLedger& led = obs::MoveLedger::instance();
  PortfolioOptions popts;
  popts.num_strategies = 3;

  std::vector<std::string> jsonl;
  for (const int threads : {1, 8}) {
    runtime::set_threads(threads);
    led.reset();
    led.set_enabled(true);
    const PortfolioResult pr = f.run(popts);
    led.set_enabled(false);
    ASSERT_TRUE(pr.best.ok) << "threads=" << threads;
    jsonl.push_back(led.to_jsonl(/*include_timing=*/false));
    if (threads == 1) {
      // The per-strategy rollup sees each explorer under its own key.
      const auto by_strategy = led.summary_by_strategy();
      for (const int s : {0, 1, 2}) {
        EXPECT_TRUE(by_strategy.count(s)) << "strategy " << s;
      }
    }
    led.reset();
  }
  runtime::set_threads(0);

  // Composite group ids order records by (strategy, sequence), so the
  // merged export is byte-identical at any thread count.
  EXPECT_FALSE(jsonl[0].empty());
  EXPECT_EQ(jsonl[0], jsonl[1]);
  // Every explorer left its stamp.
  for (const int s : {0, 1, 2}) {
    EXPECT_NE(jsonl[0].find("\"strategy\":" + std::to_string(s)),
              std::string::npos)
        << "strategy " << s;
  }
}

// TSan stress: a 4-strategy portfolio and a solo job race on the shared
// thread pool and eval caches; the solo job's report must come out
// bit-identical to an uncontended run (the caches change speed, never
// results), with no data races flagged.
TEST(PortfolioStress, SoloReportBitIdenticalUnderConcurrentPortfolio) {
  serve::JobSpec solo_spec;
  solo_spec.benchmark = "test1";
  solo_spec.verify = false;

  serve::JobHooks quiet_hooks;
  quiet_hooks.job_id = 501;
  const serve::JobOutcome quiet = serve::run_job(solo_spec, quiet_hooks);
  ASSERT_TRUE(quiet.ok) << quiet.error;

  serve::JobSpec pf_spec = solo_spec;
  pf_spec.portfolio = 4;
  pf_spec.seed = 7;  // a different stream, sharing the caches

  serve::JobOutcome contended;
  serve::JobOutcome pf;
  std::thread pf_thread([&] {
    serve::JobHooks hooks;
    hooks.job_id = 502;
    pf = serve::run_job(pf_spec, hooks);
  });
  {
    serve::JobHooks hooks;
    hooks.job_id = 503;
    contended = serve::run_job(solo_spec, hooks);
  }
  pf_thread.join();

  ASSERT_TRUE(pf.ok) << pf.error;
  ASSERT_TRUE(contended.ok) << contended.error;
  EXPECT_EQ(strip_timing(contended.report), strip_timing(quiet.report));
  EXPECT_EQ(contended.area, quiet.area);
  EXPECT_EQ(contended.power, quiet.power);
}

}  // namespace
}  // namespace hsyn
