// Tests of the synthesis service (src/serve/): wire protocol
// round-trips, frame transport, the concurrent job engine's
// bit-identity/cancellation/budget behavior, and an end-to-end daemon
// over a unix socket.
#include <unistd.h>

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "obs/telemetry.h"
#include "serve/client.h"
#include "serve/framing.h"
#include "serve/jobs.h"
#include "serve/proto.h"
#include "serve/scheduler.h"
#include "serve/server.h"

namespace hsyn::serve {
namespace {

/// The report minus its only run-dependent line (wall-clock synthesis
/// time) -- everything else must be bit-identical across runs.
std::string strip_timing(const std::string& report) {
  std::istringstream in(report);
  std::string out, line;
  while (std::getline(in, line)) {
    if (line.find("synthesis time") == std::string::npos) {
      out += line;
      out += '\n';
    }
  }
  return out;
}

JobSpec bench_spec(const std::string& name, std::uint64_t seed) {
  JobSpec spec;
  spec.benchmark = name;
  spec.seed = seed;
  spec.verify = false;
  return spec;
}

/// Collects completion callbacks from a JobEngine.
class Results {
 public:
  void add(std::uint64_t id, const JobOutcome& out) {
    std::lock_guard<std::mutex> lock(mu_);
    done_[id] = out;
    cv_.notify_all();
  }
  JobOutcome wait(std::uint64_t id) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return done_.count(id) != 0; });
    return done_[id];
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::uint64_t, JobOutcome> done_;
};

TEST(ServeProto, SubmitRoundTrip) {
  JobSpec spec;
  spec.design_text = "behavior top {\n  in a;\n  out \"y\";\n}\n";
  spec.design_name = "my design.dfg";
  spec.objective = Objective::Area;
  spec.mode = Mode::Flattened;
  spec.laxity = 1.75;
  spec.seed = 7;
  spec.templates = true;
  spec.verify = false;
  spec.time_budget_ms = 1500;
  spec.cache_budget_mb = 64;
  spec.want_progress = true;
  spec.want_ledger = true;
  spec.portfolio = 6;
  spec.portfolio_rounds = 2;
  spec.strategies = "preset=deep;order=cad,name=share-lead";

  Request req;
  std::string err;
  ASSERT_TRUE(parse_request(encode_submit(spec, "t-1"), &req, &err)) << err;
  EXPECT_EQ(req.type, Request::Type::Submit);
  EXPECT_EQ(req.tag, "t-1");
  EXPECT_EQ(req.spec.design_text, spec.design_text);
  EXPECT_EQ(req.spec.design_name, spec.design_name);
  EXPECT_EQ(req.spec.objective, Objective::Area);
  EXPECT_EQ(req.spec.mode, Mode::Flattened);
  EXPECT_DOUBLE_EQ(req.spec.laxity, 1.75);
  EXPECT_EQ(req.spec.seed, 7u);
  EXPECT_TRUE(req.spec.templates);
  EXPECT_FALSE(req.spec.verify);
  EXPECT_EQ(req.spec.time_budget_ms, 1500);
  EXPECT_EQ(req.spec.cache_budget_mb, 64);
  EXPECT_TRUE(req.spec.want_progress);
  EXPECT_TRUE(req.spec.want_ledger);
  EXPECT_EQ(req.spec.portfolio, 6);
  EXPECT_EQ(req.spec.portfolio_rounds, 2);
  EXPECT_EQ(req.spec.strategies, spec.strategies);
}

TEST(ServeProto, SubmitDefaultsOmitPortfolioFields) {
  // A plain single-seed spec must not grow portfolio keys on the wire
  // (old clients and old daemons keep interoperating), and parsing a
  // frame without them must yield the single-seed defaults.
  JobSpec spec;
  spec.benchmark = "test1";
  const std::string frame = encode_submit(spec, "t-2");
  EXPECT_EQ(frame.find("portfolio"), std::string::npos);
  EXPECT_EQ(frame.find("strategies"), std::string::npos);

  Request req;
  std::string err;
  ASSERT_TRUE(parse_request(frame, &req, &err)) << err;
  EXPECT_EQ(req.spec.portfolio, 0);
  EXPECT_EQ(req.spec.portfolio_rounds, 1);
  EXPECT_TRUE(req.spec.strategies.empty());
  EXPECT_EQ(req.spec.seed, 42u);  // documented default

  EXPECT_FALSE(parse_request(
      "{\"type\":\"submit\",\"benchmark\":\"test1\",\"portfolio\":-1}", &req,
      &err));
}

TEST(ServeProto, SubmitRequiresExactlyOneSource) {
  Request req;
  std::string err;
  EXPECT_FALSE(parse_request("{\"type\":\"submit\"}", &req, &err));
  EXPECT_FALSE(parse_request(
      "{\"type\":\"submit\",\"benchmark\":\"test1\",\"design\":\"x\"}", &req,
      &err));
  EXPECT_TRUE(parse_request("{\"type\":\"submit\",\"benchmark\":\"test1\"}",
                            &req, &err))
      << err;
}

TEST(ServeProto, MalformedRequestsRejected) {
  Request req;
  std::string err;
  EXPECT_FALSE(parse_request("not json", &req, &err));
  EXPECT_FALSE(parse_request("[1,2]", &req, &err));
  EXPECT_FALSE(parse_request("{\"type\":\"frobnicate\"}", &req, &err));
  EXPECT_FALSE(parse_request("{\"type\":\"cancel\"}", &req, &err));
  EXPECT_FALSE(parse_request(
      "{\"type\":\"submit\",\"benchmark\":\"test1\",\"mode\":\"bogus\"}", &req,
      &err));
}

TEST(ServeProto, ResultRoundTripPreservesReportBytes) {
  JobOutcome out;
  out.ok = true;
  out.report = "line one\n  \"quoted\"\tand\\slashed\nline three\n";
  out.area = 1234.5;
  out.power = 6.25;
  out.energy = 0.125;
  out.synth_seconds = 0.75;
  out.ledger_table = "class a | 1\n";
  out.ledger_jsonl = "{\"move\":\"a\"}\n";
  out.ledger_attempts = 42;
  out.cache_budget_charged = 1 << 20;
  out.cache_budget_rejects = 3;

  Response resp;
  std::string err;
  ASSERT_TRUE(parse_response(encode_result(9, out), &resp, &err)) << err;
  EXPECT_EQ(resp.type, Response::Type::Result);
  EXPECT_EQ(resp.job, 9u);
  EXPECT_TRUE(resp.outcome.ok);
  EXPECT_EQ(resp.outcome.report, out.report);
  EXPECT_DOUBLE_EQ(resp.outcome.area, 1234.5);
  EXPECT_DOUBLE_EQ(resp.outcome.power, 6.25);
  EXPECT_EQ(resp.outcome.ledger_table, out.ledger_table);
  EXPECT_EQ(resp.outcome.ledger_attempts, 42u);
  EXPECT_EQ(resp.outcome.cache_budget_charged, std::uint64_t{1} << 20);
  EXPECT_EQ(resp.outcome.cache_budget_rejects, 3u);
}

TEST(ServeProto, ProgressAndStatusRoundTrip) {
  SynthProgress ev;
  ev.stage = SynthProgress::Stage::Pass;
  ev.vdd = 3.3;
  ev.clock_ns = 20;
  ev.pass = 2;
  ev.moves_applied = 17;
  ev.moves_kept = 5;
  ev.cost = 123.5;
  Response resp;
  std::string err;
  ASSERT_TRUE(parse_response(encode_progress(4, ev), &resp, &err)) << err;
  EXPECT_EQ(resp.type, Response::Type::Progress);
  EXPECT_EQ(resp.job, 4u);
  EXPECT_EQ(resp.progress.stage, SynthProgress::Stage::Pass);
  EXPECT_EQ(resp.progress.pass, 2);
  EXPECT_EQ(resp.progress.moves_applied, 17);
  EXPECT_DOUBLE_EQ(resp.progress.cost, 123.5);

  std::vector<JobStatus> jobs = {
      {1, JobState::Done, ""},
      {2, JobState::Failed, "synthesis failed: infeasible"},
  };
  ASSERT_TRUE(parse_response(encode_status(jobs, 4, 7), &resp, &err)) << err;
  EXPECT_EQ(resp.type, Response::Type::Status);
  EXPECT_EQ(resp.sessions, 4);
  EXPECT_EQ(resp.queued, 7u);
  ASSERT_EQ(resp.jobs.size(), 2u);
  EXPECT_EQ(resp.jobs[0].state, JobState::Done);
  EXPECT_EQ(resp.jobs[1].state, JobState::Failed);
  EXPECT_EQ(resp.jobs[1].error, "synthesis failed: infeasible");
}

TEST(ServeFraming, FramesSurvivePipeTransport) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  const std::vector<std::string> frames = {
      "{\"type\":\"ping\"}",
      encode_result(1, [] {
        JobOutcome o;
        o.ok = true;
        o.report = "multi\nline\nreport with \"quotes\"\n";
        return o;
      }()),
      "{}",
  };
  for (const std::string& f : frames) ASSERT_TRUE(write_frame(fds[1], f));
  ::close(fds[1]);
  FrameReader reader(fds[0]);
  std::string got;
  for (const std::string& f : frames) {
    ASSERT_TRUE(reader.next(&got));
    EXPECT_EQ(got, f);
  }
  EXPECT_FALSE(reader.next(&got));  // EOF
  ::close(fds[0]);
}

TEST(ServeFraming, OversizedFramePoisonsReader) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  FrameReader reader(fds[0], /*max_frame=*/16);
  ASSERT_TRUE(write_frame(fds[1], "this frame is longer than sixteen bytes"));
  ::close(fds[1]);
  std::string got;
  EXPECT_FALSE(reader.next(&got));
  ::close(fds[0]);
}

TEST(ServeEngine, RunsJobsAndReportsStatus) {
  JobEngine engine(2);
  Results results;
  const std::uint64_t id = engine.submit(
      bench_spec("test1", 42), nullptr,
      [&](std::uint64_t j, const JobOutcome& out) { results.add(j, out); });
  ASSERT_NE(id, 0u);
  const JobOutcome out = results.wait(id);
  EXPECT_TRUE(out.ok) << out.error;
  EXPECT_NE(out.report.find("design test1"), std::string::npos);
  const std::vector<JobStatus> status = engine.status();
  ASSERT_EQ(status.size(), 1u);
  EXPECT_EQ(status[0].id, id);
  EXPECT_EQ(status[0].state, JobState::Done);
  engine.shutdown();
  // After shutdown, submissions are refused.
  EXPECT_EQ(engine.submit(bench_spec("test1", 42), nullptr, nullptr), 0u);
}

TEST(ServeEngine, TimeBudgetCancelsLongJob) {
  JobEngine engine(1);
  Results results;
  JobSpec spec = bench_spec("dct", 42);
  spec.time_budget_ms = 1;  // far too little for a dct synthesis
  const std::uint64_t id = engine.submit(
      std::move(spec), nullptr,
      [&](std::uint64_t j, const JobOutcome& out) { results.add(j, out); });
  ASSERT_NE(id, 0u);
  const JobOutcome out = results.wait(id);
  EXPECT_TRUE(out.cancelled);
  EXPECT_FALSE(out.ok);
}

TEST(ServeEngine, CancelHitsQueuedOrRunningJob) {
  JobEngine engine(1);  // one session: the second submission queues
  Results results;
  auto done = [&](std::uint64_t j, const JobOutcome& out) {
    results.add(j, out);
  };
  const std::uint64_t a = engine.submit(bench_spec("lat", 1), nullptr, done);
  const std::uint64_t b = engine.submit(bench_spec("lat", 2), nullptr, done);
  ASSERT_NE(a, 0u);
  ASSERT_NE(b, 0u);
  const bool hit = engine.cancel(b, "test cancel");
  const JobOutcome outB = results.wait(b);
  if (hit) {
    EXPECT_TRUE(outB.cancelled);
    EXPECT_EQ(outB.error, "test cancel");
  } else {
    EXPECT_TRUE(outB.ok);  // b finished before the cancel landed
  }
  EXPECT_TRUE(results.wait(a).ok);
  EXPECT_FALSE(engine.cancel(a, "too late"));  // finished jobs refuse
}

TEST(ServeEngine, CacheBudgetNeverChangesTheReport) {
  const JobOutcome base = run_job(bench_spec("lat", 5), JobHooks{});
  ASSERT_TRUE(base.ok) << base.error;

  JobEngine engine(1);
  Results results;
  JobSpec spec = bench_spec("lat", 5);
  spec.cache_budget_mb = 1;  // tight enough to force rejections
  const std::uint64_t id = engine.submit(
      std::move(spec), nullptr,
      [&](std::uint64_t j, const JobOutcome& out) { results.add(j, out); });
  const JobOutcome out = results.wait(id);
  ASSERT_TRUE(out.ok) << out.error;
  EXPECT_EQ(strip_timing(out.report), strip_timing(base.report));
  EXPECT_LE(out.cache_budget_charged, std::uint64_t{1} << 20);
}

// The tentpole guarantee: >= 4 jobs in flight on one engine, every
// report bit-identical (timing stripped) to a solo run of the same
// spec.
TEST(ServeStress, ConcurrentJobsBitIdentical) {
  const std::vector<JobSpec> specs = {
      bench_spec("test1", 11),
      bench_spec("test1", 12),
      bench_spec("lat", 11),
      bench_spec("lat", 12),
  };
  std::vector<std::string> solo;
  for (const JobSpec& spec : specs) {
    const JobOutcome out = run_job(spec, JobHooks{});
    ASSERT_TRUE(out.ok) << out.error;
    solo.push_back(strip_timing(out.report));
  }
  // Distinct seeds must actually explore distinct runs for the identity
  // check below to mean anything.
  EXPECT_NE(solo[0], solo[2]);

  JobEngine engine(4);
  Results results;
  std::vector<std::uint64_t> ids;
  for (const JobSpec& spec : specs) {
    ids.push_back(engine.submit(
        spec, nullptr,
        [&](std::uint64_t j, const JobOutcome& out) { results.add(j, out); }));
    ASSERT_NE(ids.back(), 0u);
  }
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const JobOutcome out = results.wait(ids[i]);
    ASSERT_TRUE(out.ok) << out.error;
    EXPECT_EQ(strip_timing(out.report), solo[i])
        << "job " << ids[i] << " diverged from its solo run";
  }
}

TEST(ServeEndToEnd, UnixSocketDaemonRoundTrip) {
  const std::string path =
      "/tmp/hsyn_test_" + std::to_string(::getpid()) + ".sock";
  Server server(ServerOptions{path, 0, 2});
  std::string err;
  ASSERT_TRUE(server.start(&err)) << err;
  std::thread daemon([&] { server.run(); });

  const JobOutcome base = run_job(bench_spec("test1", 42), JobHooks{});
  ASSERT_TRUE(base.ok) << base.error;

  Client client;
  ASSERT_TRUE(client.connect(path, &err)) << err;
  ASSERT_TRUE(client.ping(&err)) << err;

  JobSpec spec = bench_spec("test1", 42);
  spec.want_progress = true;
  std::atomic<int> events{0};
  JobOutcome out;
  ASSERT_TRUE(client.run_job(
      spec, [&](const SynthProgress&) { events.fetch_add(1); }, &out, &err))
      << err;
  EXPECT_TRUE(out.ok) << out.error;
  EXPECT_EQ(strip_timing(out.report), strip_timing(base.report));
  EXPECT_GT(events.load(), 0);

  std::vector<JobStatus> jobs;
  int sessions = 0;
  std::uint64_t queued = 0;
  ASSERT_TRUE(client.status(&jobs, &sessions, &queued, &err)) << err;
  EXPECT_EQ(sessions, 2);
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_EQ(jobs[0].state, JobState::Done);

  ASSERT_TRUE(client.shutdown_server(&err)) << err;
  daemon.join();
  // The socket file is gone after a clean shutdown.
  EXPECT_NE(::access(path.c_str(), F_OK), 0);
}

TEST(ServeProto, StatsWatchRequestRoundTrip) {
  Request req;
  std::string err;
  ASSERT_TRUE(parse_request(encode_stats_request(), &req, &err)) << err;
  EXPECT_EQ(req.type, Request::Type::Stats);
  ASSERT_TRUE(parse_request(encode_watch(7), &req, &err)) << err;
  EXPECT_EQ(req.type, Request::Type::Watch);
  EXPECT_EQ(req.job, 7u);
  ASSERT_TRUE(parse_request(encode_watch(0), &req, &err)) << err;
  EXPECT_EQ(req.type, Request::Type::Watch);
  EXPECT_EQ(req.job, 0u);  // whole-server watch omits the job key
  ASSERT_TRUE(parse_request(encode_unwatch(), &req, &err)) << err;
  EXPECT_EQ(req.type, Request::Type::Unwatch);
}

TelemetryFrame sample_frame() {
  TelemetryFrame f;
  f.seq = 12;
  f.t_ms = 3456;
  f.uptime_ms = 789;
  f.regions = 4;
  f.tasks = 99;
  f.cache_hits = 1000;
  f.cache_misses = 50;
  f.cache_bytes = 1 << 20;
  f.spans_dropped = 1;
  f.ledger_dropped = 2;
  f.rewrites_refuted = 3;
  JobTelemetry j;
  j.job = 5;
  j.state = "running";
  j.passes = 8;
  j.pass = 2;
  j.depth = 4;
  j.moves_applied = 70;
  j.moves_accepted = 12;
  j.applied_by_class[0] = 40;
  j.applied_by_class[1] = 20;
  j.applied_by_class[2] = 10;
  j.accepted_by_class[0] = 6;
  j.accepted_by_class[1] = 4;
  j.accepted_by_class[2] = 2;
  j.rewrites_refuted = 1;
  j.strategies_done = 3;
  j.cache_hits = 500;
  j.cache_misses = 25;
  j.replay_samples = 64;
  j.best_cost = 123.5;
  j.vdd = 3.3;
  j.clock_ns = 20.0;
  f.jobs.push_back(j);
  return f;
}

TEST(ServeProto, TelemetryFrameRoundTrip) {
  const TelemetryFrame f = sample_frame();
  Response resp;
  std::string err;
  ASSERT_TRUE(parse_response(encode_telemetry(f), &resp, &err)) << err;
  EXPECT_EQ(resp.type, Response::Type::Telemetry);
  const TelemetryFrame& g = resp.telemetry;
  EXPECT_EQ(g.seq, 12u);
  EXPECT_EQ(g.uptime_ms, 789u);
  EXPECT_EQ(g.tasks, 99u);
  EXPECT_EQ(g.cache_hits, 1000u);
  EXPECT_EQ(g.spans_dropped, 1u);
  EXPECT_EQ(g.ledger_dropped, 2u);
  EXPECT_EQ(g.rewrites_refuted, 3u);
  ASSERT_EQ(g.jobs.size(), 1u);
  const JobTelemetry& j = g.jobs[0];
  EXPECT_EQ(j.job, 5u);
  EXPECT_EQ(j.state, "running");
  EXPECT_EQ(j.passes, 8u);
  EXPECT_EQ(j.pass, 2);
  EXPECT_EQ(j.depth, 4);
  EXPECT_EQ(j.moves_applied, 70u);
  EXPECT_EQ(j.moves_accepted, 12u);
  EXPECT_EQ(j.applied_by_class[1], 20u);
  EXPECT_EQ(j.accepted_by_class[2], 2u);
  EXPECT_EQ(j.rewrites_refuted, 1u);
  EXPECT_EQ(j.strategies_done, 3u);
  EXPECT_EQ(j.cache_hits, 500u);
  EXPECT_EQ(j.replay_samples, 64u);
  EXPECT_DOUBLE_EQ(j.best_cost, 123.5);
  EXPECT_DOUBLE_EQ(j.vdd, 3.3);
  EXPECT_DOUBLE_EQ(j.clock_ns, 20.0);
}

TEST(ServeProto, StatsResponseRoundTrip) {
  ServerStats st;
  st.uptime_ms = 60000;
  st.sessions = 4;
  st.active = 2;
  st.queued = 9;
  st.interval_ms = 250;
  st.sampler_running = true;
  Response resp;
  std::string err;
  ASSERT_TRUE(parse_response(encode_stats(st, sample_frame()), &resp, &err))
      << err;
  EXPECT_EQ(resp.type, Response::Type::Stats);
  EXPECT_EQ(resp.stats.uptime_ms, 60000u);
  EXPECT_EQ(resp.stats.sessions, 4);
  EXPECT_EQ(resp.stats.active, 2u);
  EXPECT_EQ(resp.stats.queued, 9u);
  EXPECT_EQ(resp.stats.interval_ms, 250);
  EXPECT_TRUE(resp.stats.sampler_running);
  // The embedded telemetry body rides along.
  EXPECT_EQ(resp.telemetry.seq, 12u);
  ASSERT_EQ(resp.telemetry.jobs.size(), 1u);
  EXPECT_EQ(resp.telemetry.jobs[0].job, 5u);
}

TEST(ServeProto, PongCarriesUptimeAndLoad) {
  Response resp;
  std::string err;
  ASSERT_TRUE(parse_response(encode_pong(1234, 2, 5), &resp, &err)) << err;
  EXPECT_EQ(resp.type, Response::Type::Pong);
  EXPECT_EQ(resp.uptime_ms, 1234u);
  EXPECT_EQ(resp.active, 2u);
  EXPECT_EQ(resp.queued, 5u);
  // The legacy shape (no load fields) still parses.
  ASSERT_TRUE(parse_response("{\"type\":\"pong\"}", &resp, &err)) << err;
  EXPECT_EQ(resp.type, Response::Type::Pong);
  EXPECT_EQ(resp.uptime_ms, 0u);
}

TEST(ServeEndToEnd, StatsAndWatchAgainstLiveDaemon) {
  // A fast sampler so the watch sees frames promptly; the daemon's
  // Telemetry::start resolves HSYN_TELEMETRY_MS when (re)starting.
  obs::Telemetry::instance().stop();
  ::setenv("HSYN_TELEMETRY_MS", "20", 1);
  const std::string path =
      "/tmp/hsyn_test_tel_" + std::to_string(::getpid()) + ".sock";
  Server server(ServerOptions{path, 0, 2});
  std::string err;
  ASSERT_TRUE(server.start(&err)) << err;
  std::thread daemon([&] { server.run(); });

  Client client;
  ASSERT_TRUE(client.connect(path, &err)) << err;
  JobOutcome out;
  ASSERT_TRUE(client.run_job(bench_spec("test1", 42), nullptr, &out, &err))
      << err;
  EXPECT_TRUE(out.ok) << out.error;

  // One-shot stats: server block + embedded telemetry with the job row.
  ServerStats st;
  TelemetryFrame frame;
  std::string raw;
  ASSERT_TRUE(client.stats(&st, &frame, &raw, &err)) << err;
  EXPECT_EQ(st.sessions, 2);
  EXPECT_TRUE(st.sampler_running);
  EXPECT_GT(st.interval_ms, 0);
  ASSERT_EQ(frame.jobs.size(), 1u);
  EXPECT_EQ(frame.jobs[0].state, "done");
  EXPECT_GT(frame.jobs[0].passes, 0u);
  EXPECT_FALSE(raw.empty());
  EXPECT_NE(raw.find("\"type\":\"stats\""), std::string::npos);

  // Live watch on a second connection: frames arrive on the sampler's
  // cadence with increasing seq; the finished job reports state done.
  Client watcher;
  ASSERT_TRUE(watcher.connect(path, &err)) << err;
  int frames = 0;
  std::uint64_t prev_seq = 0;
  ASSERT_TRUE(watcher.watch(
      0,
      [&](const TelemetryFrame& f) {
        if (frames > 0) {
          EXPECT_GT(f.seq, prev_seq);
        }
        prev_seq = f.seq;
        ++frames;
        return frames < 3;
      },
      &err))
      << err;
  EXPECT_EQ(frames, 3);

  ASSERT_TRUE(client.shutdown_server(&err)) << err;
  daemon.join();
  ::unsetenv("HSYN_TELEMETRY_MS");
}

// TSan stress (the CI thread-sanitizer job filters on ServeStress.*):
// concurrent jobs mutate the per-job search state while the sampler and
// a watch subscriber read it.
TEST(ServeStress, WatchWhileConcurrentJobsRun) {
  obs::Telemetry::instance().stop();
  ::setenv("HSYN_TELEMETRY_MS", "5", 1);
  const std::string path =
      "/tmp/hsyn_test_watch_" + std::to_string(::getpid()) + ".sock";
  Server server(ServerOptions{path, 0, 4});
  std::string err;
  ASSERT_TRUE(server.start(&err)) << err;
  std::thread daemon([&] { server.run(); });

  std::vector<std::thread> submitters;
  std::atomic<int> ok{0};
  for (int i = 0; i < 4; ++i) {
    submitters.emplace_back([&, i] {
      Client c;
      std::string e;
      JobOutcome out;
      if (c.connect(path, &e) &&
          c.run_job(bench_spec(i % 2 ? "test1" : "lat",
                               static_cast<std::uint64_t>(11 + i)),
                    nullptr, &out, &e) &&
          out.ok) {
        ok.fetch_add(1);
      }
    });
  }

  Client watcher;
  std::string werr;
  ASSERT_TRUE(watcher.connect(path, &werr)) << werr;
  const bool watched = watcher.watch(
      0,
      [&](const TelemetryFrame& f) {
        std::size_t finished = 0;
        for (const JobTelemetry& j : f.jobs) {
          if (j.state != "queued" && j.state != "running") ++finished;
        }
        return !(f.jobs.size() >= 4 && finished >= 4);
      },
      &werr);
  EXPECT_TRUE(watched) << werr;

  for (std::thread& t : submitters) t.join();
  EXPECT_EQ(ok.load(), 4);
  ASSERT_TRUE(watcher.shutdown_server(&werr)) << werr;
  daemon.join();
  ::unsetenv("HSYN_TELEMETRY_MS");
}

TEST(ServeEndToEnd, SecondDaemonRefusesBusySocket) {
  const std::string path =
      "/tmp/hsyn_test2_" + std::to_string(::getpid()) + ".sock";
  Server server(ServerOptions{path, 0, 1});
  std::string err;
  ASSERT_TRUE(server.start(&err)) << err;
  std::thread daemon([&] { server.run(); });

  Listener second;
  std::string err2;
  EXPECT_FALSE(second.listen_unix(path, &err2));
  EXPECT_NE(err2.find("already listening"), std::string::npos);

  server.request_shutdown();
  daemon.join();
}

}  // namespace
}  // namespace hsyn::serve
