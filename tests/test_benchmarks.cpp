#include <gtest/gtest.h>

#include "benchmarks/benchmarks.h"
#include "dfg/flatten.h"
#include "sched/scheduler.h"

namespace hsyn {
namespace {

const OpPoint kRef{5.0, 20.0};

class BenchmarkStructure : public ::testing::TestWithParam<std::string> {};

TEST_P(BenchmarkStructure, BuildsValidatesAndHasHierarchy) {
  const Library lib = default_library();
  const Benchmark bench = make_benchmark(GetParam(), lib);
  EXPECT_EQ(bench.name, GetParam());
  EXPECT_EQ(bench.design.top_name(), GetParam());
  EXPECT_NO_THROW(bench.design.validate());
  EXPECT_TRUE(bench.design.top().has_hierarchy());
  EXPECT_GE(bench.design.depth(GetParam()), 1);
  EXPECT_GT(bench.design.flattened_size(GetParam()), 8);
  EXPECT_FALSE(bench.clib.empty());
}

TEST_P(BenchmarkStructure, TemplatesScheduleAndMatchVariants) {
  const Library lib = default_library();
  const Benchmark bench = make_benchmark(GetParam(), lib);
  for (const ComplexLibrary::Template& t : bench.clib.all()) {
    ASSERT_TRUE(bench.design.has_behavior(t.implements)) << t.name;
    Datapath inst = ComplexLibrary::instantiate(t, t.implements);
    EXPECT_NO_THROW(inst.validate(lib)) << t.name;
    const SchedResult r = schedule_datapath(inst, lib, kRef, kNoDeadline);
    EXPECT_TRUE(r.ok) << t.name << ": " << r.reason;
    EXPECT_GT(r.makespan, 0) << t.name;
  }
}

INSTANTIATE_TEST_SUITE_P(All, BenchmarkStructure,
                         ::testing::Values("avenhaus_cascade", "lat", "dct",
                                           "iir", "hier_paulin", "test1",
                                           "fir16", "dct2d"));

TEST(Benchmarks, UnknownNameRejected) {
  const Library lib = default_library();
  EXPECT_THROW(make_benchmark("nope", lib), std::logic_error);
}

TEST(Benchmarks, NamesListMatchesPaperTable3) {
  const auto names = benchmark_names();
  ASSERT_EQ(names.size(), 6u);
  EXPECT_EQ(names[0], "avenhaus_cascade");
  EXPECT_EQ(names[5], "test1");
}

TEST(Benchmarks, PaulinIterMatchesHalStructure) {
  const Dfg d = make_paulin_iter();
  int mults = 0, adds = 0, subs = 0, cmps = 0;
  for (const Node& n : d.nodes()) {
    mults += n.op == Op::Mult ? 1 : 0;
    adds += n.op == Op::Add ? 1 : 0;
    subs += n.op == Op::Sub ? 1 : 0;
    cmps += n.op == Op::Cmp ? 1 : 0;
  }
  EXPECT_EQ(mults, 5);
  EXPECT_EQ(adds, 2);
  EXPECT_EQ(subs, 2);
  EXPECT_EQ(cmps, 1);
}

TEST(Benchmarks, Test1HasFiveHierNodes) {
  const Library lib = default_library();
  const Benchmark bench = make_benchmark("test1", lib);
  int hier = 0;
  for (const Node& n : bench.design.top().nodes()) hier += n.is_hier() ? 1 : 0;
  EXPECT_EQ(hier, 5);
}

TEST(Benchmarks, TemplateStylesDiffer) {
  const Library lib = default_library();
  const Benchmark bench = make_benchmark("test1", lib);
  const auto* fast = bench.clib.find("b3mul_fast");
  const auto* lp = bench.clib.find("b3mul_lp");
  ASSERT_TRUE(fast && lp);
  // Fast uses mult1 (3 cycles), low-power uses mult2 (5 cycles).
  EXPECT_EQ(lib.fu(fast->impl.fus[0].type).name, "mult1");
  EXPECT_EQ(lib.fu(lp->impl.fus[0].type).name, "mult2");
}

TEST(Benchmarks, CompactTemplateSharesUnits) {
  const Library lib = default_library();
  const Benchmark bench = make_benchmark("iir", lib);
  const auto* fast = bench.clib.find("biquad_fast");
  const auto* compact = bench.clib.find("biquad_compact");
  ASSERT_TRUE(fast && compact);
  EXPECT_LT(compact->impl.fus.size(), fast->impl.fus.size());
}

TEST(Benchmarks, ChainTemplateOnlyWhereChainsExist) {
  const Library lib = default_library();
  const Benchmark bench = make_benchmark("test1", lib);
  EXPECT_NE(bench.clib.find("addtree_seq_chain"), nullptr);
  EXPECT_EQ(bench.clib.find("addtree_chain"), nullptr);     // balanced tree
  EXPECT_EQ(bench.clib.find("b3mul_alt_chain"), nullptr);   // no mult chains
}

TEST(Benchmarks, EquivalenceTemplatesVisibleAcrossClass) {
  const Library lib = default_library();
  const Benchmark bench = make_benchmark("test1", lib);
  // Templates for addtree should include the addtree_seq chain module.
  const auto ts = bench.clib.for_behavior(bench.design, "addtree");
  bool chain_found = false;
  for (const auto* t : ts) chain_found |= t->name == "addtree_seq_chain";
  EXPECT_TRUE(chain_found);
}

}  // namespace
}  // namespace hsyn
