// Ablation study of the design choices DESIGN.md calls out: each engine
// feature is disabled in turn and the resulting area/power deltas are
// reported on the hierarchical suite at L.F. 2.2.
//
//   full           -- the complete algorithm
//   no-negative    -- greedy only (no variable-depth negative-gain moves)
//   no-share       -- move C disabled (no merging / RTL embedding)
//   no-split       -- move D disabled
//   no-resynth     -- move B disabled (library selection only, no descent)
//   no-replace     -- moves A+B disabled entirely
//
// Set HSYN_QUICK=1 for a reduced sweep.
#include <cstdio>
#include <vector>

#include "table_common.h"
#include "util/fmt.h"
#include "util/table.h"

int main() {
  using namespace hsyn;
  using namespace hsyn::tables;
  const Library lib = default_library();
  const auto circuits = sweep_circuits();
  const double lf = 2.2;

  struct Variant {
    const char* name;
    void (*tweak)(SynthOptions&);
  };
  const std::vector<Variant> variants = {
      {"full", [](SynthOptions&) {}},
      {"no-negative", [](SynthOptions& o) { o.enable_negative_gain = false; }},
      {"no-share", [](SynthOptions& o) { o.enable_share = false; }},
      {"no-split", [](SynthOptions& o) { o.enable_split = false; }},
      {"no-resynth", [](SynthOptions& o) { o.enable_resynth = false; }},
      {"no-replace",
       [](SynthOptions& o) {
         o.enable_replace = false;
         o.enable_resynth = false;
       }},
  };

  std::printf("=== Ablation of engine features (hier, L.F. %.1f) ===\n",
              lf);
  std::printf("area/power are averages normalized to the FULL variant.\n\n");

  // Collect per-variant sums.
  std::vector<double> area_sum(variants.size(), 0);
  std::vector<double> power_sum(variants.size(), 0);
  std::vector<double> time_sum(variants.size(), 0);
  int n = 0;

  for (const std::string& name : circuits) {
    const Benchmark bench = make_benchmark(name, lib);
    const double ts = lf * min_sample_period_ns(bench.design, lib);
    std::vector<double> areas, powers;
    bool all_ok = true;
    std::vector<double> times;
    for (const Variant& v : variants) {
      SynthOptions opts = sweep_options();
      v.tweak(opts);
      const SynthResult a = synthesize(bench.design, lib, &bench.clib, ts,
                                       Objective::Area, Mode::Hierarchical,
                                       opts);
      const SynthResult p = synthesize(bench.design, lib, &bench.clib, ts,
                                       Objective::Power, Mode::Hierarchical,
                                       opts);
      if (!a.ok || !p.ok) {
        all_ok = false;
        break;
      }
      areas.push_back(a.area);
      powers.push_back(p.power);
      times.push_back(a.synth_seconds + p.synth_seconds);
    }
    if (!all_ok) continue;
    ++n;
    for (std::size_t v = 0; v < variants.size(); ++v) {
      area_sum[v] += areas[v] / areas[0];
      power_sum[v] += powers[v] / powers[0];
      time_sum[v] += times[v];
    }
  }

  TextTable t;
  t.row({"variant", "area (x full)", "power (x full)", "time (s)"});
  t.rule();
  for (std::size_t v = 0; v < variants.size() && n > 0; ++v) {
    t.row({variants[v].name, fixed(area_sum[v] / n, 3),
           fixed(power_sum[v] / n, 3), fixed(time_sum[v] / n, 1)});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("Expected shape: disabling sharing inflates area; disabling "
              "replacement/resynthesis\ninflates power; greedy-only gives "
              "up some of both on the harder circuits.\n");
  return 0;
}
