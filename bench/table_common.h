// Shared harness for the Table 3 / Table 4 reproductions: runs the full
// circuit x laxity-factor x {flat,hier} x {area,power} synthesis sweep
// and collects the paper's normalized metrics.
//
// Normalization follows the paper exactly: every area (power) is divided
// by the area (power) of the *flattened, area-optimized, non-Vdd-scaled*
// architecture at the same laxity factor. Column A designs are
// synthesized for area at 5 V (and separately Vdd-scaled for the Table 4
// "Vdd-sc" comparison); column P designs are synthesized for power with
// free Vdd/clock selection.
//
// Environment knob: HSYN_QUICK=1 shrinks the sweep (fewer circuits /
// laxity factors) for smoke runs.
#pragma once

#include <cstdlib>
#include <string>
#include <vector>

#include "benchmarks/benchmarks.h"
#include "synth/synthesizer.h"

namespace hsyn::tables {

struct Cell {
  double area = 0;   ///< normalized to flat area-opt
  double power = 0;  ///< normalized to flat area-opt at 5 V
};

struct CircuitLfResult {
  std::string circuit;
  double lf = 0;
  Cell flat_a;           ///< flat area-opt at 5 V (1, 1 by construction)
  Cell flat_p;           ///< flat power-opt
  Cell hier_a;           ///< hier area-opt at 5 V
  Cell hier_p;           ///< hier power-opt
  double flat_a_scaled_power = 0;  ///< flat area-opt after Vdd scaling
  double hier_a_scaled_power = 0;  ///< hier area-opt after Vdd scaling
  double flat_seconds = 0;         ///< area-opt + power-opt synthesis time
  double hier_seconds = 0;
  bool ok = false;
};

inline SynthOptions sweep_options() {
  SynthOptions o;  // default KL-scaled per-pass move budget
  o.max_passes = 6;
  o.max_candidates = 16;
  o.trace_samples = 20;
  o.max_clocks = 3;
  return o;
}

inline bool quick_mode() {
  const char* q = std::getenv("HSYN_QUICK");
  return q != nullptr && q[0] == '1';
}

inline std::vector<std::string> sweep_circuits() {
  if (quick_mode()) return {"iir", "test1"};
  return benchmark_names();
}

inline std::vector<double> sweep_laxities() {
  if (quick_mode()) return {2.2};
  return {1.2, 2.2, 3.2};
}

/// Run the four syntheses for one (circuit, laxity) point.
inline CircuitLfResult run_point(const std::string& name, double lf,
                                 const Library& lib) {
  CircuitLfResult r;
  r.circuit = name;
  r.lf = lf;
  const Benchmark bench = make_benchmark(name, lib);
  const double ts = lf * min_sample_period_ns(bench.design, lib);
  const SynthOptions opts = sweep_options();

  const SynthResult flat_a = synthesize(bench.design, lib, &bench.clib, ts,
                                        Objective::Area, Mode::Flattened, opts);
  const SynthResult flat_p = synthesize(bench.design, lib, &bench.clib, ts,
                                        Objective::Power, Mode::Flattened, opts);
  const SynthResult hier_a =
      synthesize(bench.design, lib, &bench.clib, ts, Objective::Area,
                 Mode::Hierarchical, opts);
  const SynthResult hier_p =
      synthesize(bench.design, lib, &bench.clib, ts, Objective::Power,
                 Mode::Hierarchical, opts);
  if (!flat_a.ok || !flat_p.ok || !hier_a.ok || !hier_p.ok) return r;

  const double base_area = flat_a.area;
  const double base_power = flat_a.power;  // at 5 V, non-scaled
  r.flat_a = {1.0, 1.0};
  r.flat_p = {flat_p.area / base_area, flat_p.power / base_power};
  r.hier_a = {hier_a.area / base_area, hier_a.power / base_power};
  r.hier_p = {hier_p.area / base_area, hier_p.power / base_power};

  // The Vdd-sc baselines: area-optimized architectures at the lowest
  // supply that still meets the sampling period (pure scaling of the 5 V
  // binding is attempted first; the pinned-Vdd resynthesis covers the
  // common case where the area optimum exhausts the deadline).
  const SynthResult flat_sc = vdd_scale(flat_a, bench.design, lib, opts);
  const SynthResult hier_sc = vdd_scale(hier_a, bench.design, lib, opts);
  const SynthResult flat_sc2 = synthesize_vdd_scaled_area(
      bench.design, lib, &bench.clib, ts, Mode::Flattened, opts);
  const SynthResult hier_sc2 = synthesize_vdd_scaled_area(
      bench.design, lib, &bench.clib, ts, Mode::Hierarchical, opts);
  double flat_sc_power = flat_sc.power;
  if (flat_sc2.ok) flat_sc_power = std::min(flat_sc_power, flat_sc2.power);
  double hier_sc_power = hier_sc.power;
  if (hier_sc2.ok) hier_sc_power = std::min(hier_sc_power, hier_sc2.power);
  r.flat_a_scaled_power = flat_sc_power / base_power;
  r.hier_a_scaled_power = hier_sc_power / base_power;

  r.flat_seconds = flat_a.synth_seconds + flat_p.synth_seconds;
  r.hier_seconds = hier_a.synth_seconds + hier_p.synth_seconds;
  r.ok = true;
  return r;
}

}  // namespace hsyn::tables
