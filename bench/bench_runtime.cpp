// Thread-count sweep of the parallel runtime over the largest bench
// design (a 12-stage biquad cascade, the top row of bench_scaling).
//
// Emits one JSON object on stdout so CI and plotting scripts can track
// wall time per thread count; synthesis results must be bit-identical
// across the sweep (the `deterministic` field), so only `wall_s` may
// vary between rows.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "benchmarks/benchmarks.h"
#include "benchmarks/dfg_build.h"
#include "power/estimator.h"
#include "runtime/stats.h"
#include "runtime/thread_pool.h"
#include "synth/synthesizer.h"

namespace {

using namespace hsyn;

/// Cascade of `stages` biquads (the `iir` topology, parameterized).
Design make_cascade(int stages) {
  using namespace dfg_build;
  Design design;
  design.add_behavior(make_biquad());
  Dfg d("cascade" + std::to_string(stages), 1 + 7 * stages, 1 + 2 * stages);
  int x = in(d, 0);
  for (int k = 0; k < stages; ++k) {
    const int base = 1 + 7 * k;
    std::vector<int> ins = {x};
    for (int p = 0; p < 7; ++p) ins.push_back(in(d, base + p));
    const auto outs = hier(d, "biquad", ins, 3, "bq" + std::to_string(k));
    x = outs[0];
    out(d, outs[1], 1 + 2 * k);
    out(d, outs[2], 2 + 2 * k);
  }
  out(d, x, 0);
  d.validate();
  design.add_behavior(std::move(d));
  design.set_top("cascade" + std::to_string(stages));
  design.validate();
  return design;
}

struct Row {
  int threads = 0;
  double wall_s = 0;
  double area = 0;
  double energy = 0;
  std::uint64_t regions = 0;
  std::uint64_t tasks = 0;
};

}  // namespace

int main() {
  using namespace hsyn;
  const int kStages = 12;
  const Library lib = default_library();
  const Design design = make_cascade(kStages);
  const ComplexLibrary clib = default_complex_library(design, lib);
  const double ts = 2.2 * min_sample_period_ns(design, lib);
  SynthOptions opts;
  opts.max_passes = 6;
  opts.max_clocks = 2;

  std::vector<Row> rows;
  bool deterministic = true;
  for (const int threads : {1, 2, 4, 8}) {
    runtime::set_threads(threads);
    runtime::reset_stats();
    const auto t0 = std::chrono::steady_clock::now();
    const SynthResult r = synthesize(design, lib, &clib, ts, Objective::Power,
                                     Mode::Hierarchical, opts);
    const auto t1 = std::chrono::steady_clock::now();
    if (!r.ok) {
      std::fprintf(stderr, "synthesis failed at %d threads: %s\n", threads,
                   r.fail_reason.c_str());
      return 1;
    }
    const runtime::Stats s = runtime::stats_snapshot();
    Row row;
    row.threads = threads;
    row.wall_s = std::chrono::duration<double>(t1 - t0).count();
    row.area = r.area;
    row.energy = r.energy;
    row.regions = s.regions + s.inline_regions;
    row.tasks = s.tasks;
    if (!rows.empty() &&
        (rows[0].area != row.area || rows[0].energy != row.energy)) {
      deterministic = false;
    }
    rows.push_back(row);
  }

  std::printf("{\n");
  std::printf("  \"bench\": \"runtime_thread_sweep\",\n");
  std::printf("  \"design\": \"cascade%d\",\n", kStages);
  std::printf("  \"flat_ops\": %d,\n",
              design.flattened_size(design.top_name()));
  std::printf("  \"objective\": \"power\",\n");
  std::printf("  \"deterministic\": %s,\n", deterministic ? "true" : "false");
  std::printf("  \"sweep\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::printf("    {\"threads\": %d, \"wall_s\": %.3f, \"speedup\": %.2f, "
                "\"area\": %.3f, \"energy\": %.6f, \"regions\": %llu, "
                "\"tasks\": %llu}%s\n",
                r.threads, r.wall_s, rows[0].wall_s / r.wall_s, r.area,
                r.energy, static_cast<unsigned long long>(r.regions),
                static_cast<unsigned long long>(r.tasks),
                i + 1 < rows.size() ? "," : "");
  }
  std::printf("  ]\n}\n");
  return deterministic ? 0 : 1;
}
