// Candidate-evaluation cache benchmark: cold vs warm costing of a move
// generator's candidate set at 1/2/8 threads.
//
// The workload is the inner loop of move selection -- cost (energy +
// area) every candidate datapath produced by type-swapping the units of
// a scheduled solution. The cold pass starts from cleared caches; the
// warm passes re-cost the identical candidate set, where the shared
// evaluation cache (src/eval/) should answer from memory.
//
// Emits BENCH_eval.json (and the same object on stdout):
//   * per thread count: cold and warm wall seconds, warm speedup,
//     cross-thread hits observed in the shared caches,
//   * deterministic: the summed candidate costs are bit-identical
//     across all thread counts and passes.
// Cross-thread hits are expected even in the cold pass: all candidates
// share one (DFG, trace) edge-values entry, so whichever worker computes
// it first serves every other worker.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "benchmarks/benchmarks.h"
#include "eval/engine.h"
#include "power/estimator.h"
#include "power/trace.h"
#include "rtl/cost.h"
#include "runtime/parallel.h"
#include "runtime/thread_pool.h"
#include "sched/scheduler.h"
#include "synth/initial.h"
#include "synth/moves.h"
#include "util/json.h"

namespace {

using namespace hsyn;

constexpr int kMaxCandidates = 48;
constexpr int kTraceSamples = 256;
constexpr int kReps = 3;

struct Row {
  int threads = 0;
  double cold_s = 0;
  double warm_s = 0;
  std::uint64_t cross_thread_hits = 0;
};

double now_minus(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

std::uint64_t shared_cache_cross_hits() {
  eval::EvalEngine& eng = eval::EvalEngine::instance();
  return eng.energy_cache().counters().cross_thread_hits +
         eng.area_cache().counters().cross_thread_hits +
         eng.connectivity_cache().counters().cross_thread_hits +
         eng.edge_values_cache().counters().cross_thread_hits;
}

}  // namespace

int main() {
  using namespace hsyn;
  const OpPoint pt{5.0, 20.0};
  const Library lib = default_library();
  Design design;
  design.add_behavior(make_paulin_iter("paulin"));
  design.set_top("paulin");
  design.validate();

  SynthContext cx;
  cx.design = &design;
  cx.lib = &lib;
  cx.pt = pt;
  Datapath base = initial_solution(design.top(), "paulin", cx);
  if (!schedule_datapath(base, lib, pt, kNoDeadline).ok) {
    std::fprintf(stderr, "base schedule failed\n");
    return 1;
  }
  const Trace trace = make_trace(design.top().num_inputs(), kTraceSamples, 7);

  // The candidate set: every admissible single-unit type swap, scheduled
  // once up front so the measured passes are pure costing (the part the
  // evaluation cache owns).
  std::vector<Datapath> cands;
  const BehaviorImpl& bi = base.behaviors[0];
  for (std::size_t i = 0;
       i < base.fus.size() && static_cast<int>(cands.size()) < kMaxCandidates;
       ++i) {
    std::set<Op> ops;
    int max_chain = 1;
    for (const Invocation& inv : bi.invs) {
      if (!(inv.unit == UnitRef{UnitRef::Kind::Fu, static_cast<int>(i)})) continue;
      max_chain = std::max(max_chain, static_cast<int>(inv.nodes.size()));
      for (const int nid : inv.nodes) ops.insert(bi.dfg->node(nid).op);
    }
    for (int t = 0; t < lib.num_fu_types() &&
                    static_cast<int>(cands.size()) < kMaxCandidates;
         ++t) {
      if (t == base.fus[i].type) continue;
      const FuType& ft = lib.fu(t);
      if (ft.chain_depth < max_chain) continue;
      bool supports_all = !ops.empty();
      for (const Op op : ops) supports_all = supports_all && ft.supports(op);
      if (!supports_all) continue;
      Datapath cand = base;
      cand.fus[i].type = t;
      cand.invalidate_fingerprint();
      if (!schedule_datapath(cand, lib, pt, kNoDeadline).ok) continue;
      cands.push_back(std::move(cand));
    }
  }
  const int n = static_cast<int>(cands.size());
  if (n < 8) {
    std::fprintf(stderr, "too few candidates: %d\n", n);
    return 1;
  }

  // One costing pass; returns the summed candidate costs (the
  // determinism witness).
  const auto pass = [&]() -> double {
    std::vector<double> totals(static_cast<std::size_t>(n), 0);
    runtime::parallel_for(n, [&](int i) {
      const Datapath& dp = cands[static_cast<std::size_t>(i)];
      const EnergyBreakdown e = energy_of(dp, 0, trace, lib, pt);
      const AreaBreakdown a = area_of(dp, lib);
      totals[static_cast<std::size_t>(i)] = e.total() + a.total();
    });
    double sum = 0;
    for (const double t : totals) sum += t;
    return sum;
  };

  eval::EvalEngine& eng = eval::EvalEngine::instance();
  std::vector<Row> rows;
  double ref_sum = 0;
  bool deterministic = true;
  for (const int threads : {1, 2, 8}) {
    runtime::set_threads(threads);
    Row row;
    row.threads = threads;
    const std::uint64_t cross0 = shared_cache_cross_hits();
    for (int rep = 0; rep < kReps; ++rep) {
      eng.clear();
      const auto t0 = std::chrono::steady_clock::now();
      const double cold_sum = pass();
      row.cold_s += now_minus(t0);
      const auto t1 = std::chrono::steady_clock::now();
      const double warm_sum = pass();
      row.warm_s += now_minus(t1);
      if (rows.empty() && rep == 0) ref_sum = cold_sum;
      deterministic = deterministic && cold_sum == ref_sum && warm_sum == ref_sum;
    }
    row.cross_thread_hits = shared_cache_cross_hits() - cross0;
    rows.push_back(row);
  }

  bool speedup_ok = true;
  JsonWriter w;
  w.begin_object();
  w.key("bench").value("eval_cache");
  w.key("design").value("paulin");
  w.key("candidates").value(n);
  w.key("trace_samples").value(kTraceSamples);
  w.key("deterministic").value(deterministic);
  w.key("sweep").begin_array();
  for (const Row& r : rows) {
    const double speedup = r.warm_s > 0 ? r.cold_s / r.warm_s : 0;
    speedup_ok = speedup_ok && speedup >= 1.5;
    w.begin_object();
    w.key("threads").value(r.threads);
    w.key("cold_s").value(r.cold_s);
    w.key("warm_s").value(r.warm_s);
    w.key("warm_speedup").value(speedup);
    w.key("cross_thread_hits").value(r.cross_thread_hits);
    w.end_object();
  }
  w.end_array();
  w.key("warm_speedup_ok").value(speedup_ok);
  w.end_object();
  const std::string json = w.str() + "\n";

  std::fputs(json.c_str(), stdout);
  if (std::FILE* f = std::fopen("BENCH_eval.json", "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
  } else {
    std::fprintf(stderr, "cannot write BENCH_eval.json\n");
    return 1;
  }
  return deterministic ? 0 : 1;
}
