// Portfolio-vs-single-seed acceptance benchmark.
//
// For every bundled design, runs the single-seed engine and a
// multi-strategy portfolio (synth/portfolio.h) under the same options
// and compares the objective achieved. The portfolio's explorers run
// concurrently on the deterministic pool, so its wall clock stays in
// the same league as one serial trajectory while it searches N of them.
//
// The exit code gates the claim the portfolio exists to make:
//   * never worse -- portfolio cost <= single-seed cost on EVERY design
//     (strategy 0 is an exact baseline replica, so this can only fail
//     if the best-of reduction is broken),
//   * actually useful -- strictly better on >= 4 of the 8 designs.
//
// Emits BENCH_portfolio.json (and the same object on stdout). Wall
// times are informational only; costs are deterministic and gate.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "benchmarks/benchmarks.h"
#include "library/library.h"
#include "runtime/thread_pool.h"
#include "synth/portfolio.h"
#include "synth/synthesizer.h"
#include "util/json.h"

namespace {

using namespace hsyn;

/// Seconds since construction (steady clock).
class Timer {
 public:
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point t0_ =
      std::chrono::steady_clock::now();
};

constexpr int kStrategies = 6;
constexpr int kRounds = 2;
constexpr double kLaxity = 2.2;

struct Row {
  std::string design;
  bool ok = false;
  double solo_area = 0, solo_power = 0, solo_cost = 0, solo_s = 0;
  double pf_area = 0, pf_power = 0, pf_cost = 0, pf_s = 0;
  int winner = -1;
  std::string winner_name;
};

}  // namespace

int main() {
  runtime::set_threads(0);
  const Library lib = default_library();
  std::vector<std::string> designs = benchmark_names();
  designs.push_back("fir16");
  designs.push_back("dct2d");

  std::vector<Row> rows;
  bool all_ok = true;
  for (const std::string& name : designs) {
    Row row;
    row.design = name;
    const Benchmark bench = make_benchmark(name, lib);
    const double ts = kLaxity * min_sample_period_ns(bench.design, lib);

    Timer t_solo;
    const SynthResult solo =
        synthesize(bench.design, lib, &bench.clib, ts, Objective::Power,
                   Mode::Hierarchical);
    row.solo_s = t_solo.seconds();

    PortfolioOptions popts;
    popts.num_strategies = kStrategies;
    popts.rounds = kRounds;
    Timer t_pf;
    const PortfolioResult pf =
        portfolio_synthesize(bench.design, lib, &bench.clib, ts,
                             Objective::Power, Mode::Hierarchical, {}, popts);
    row.pf_s = t_pf.seconds();

    row.ok = solo.ok && pf.best.ok;
    if (!row.ok) {
      std::fprintf(stderr, "bench_portfolio: %s: solo %s / portfolio %s\n",
                   name.c_str(),
                   solo.ok ? "ok" : solo.fail_reason.c_str(),
                   pf.best.ok ? "ok" : pf.best.fail_reason.c_str());
      all_ok = false;
    } else {
      row.solo_area = solo.area;
      row.solo_power = solo.power;
      row.solo_cost = solo.power;
      row.pf_area = pf.best.area;
      row.pf_power = pf.best.power;
      row.pf_cost = pf.best.power;
      row.winner = pf.winner;
      row.winner_name =
          pf.reports[static_cast<std::size_t>(pf.winner)].strategy.name;
      std::fprintf(stderr,
                   "%-14s solo %.4f (%.2fs)  portfolio %.4f (%.2fs)  "
                   "winner %s%s\n",
                   name.c_str(), row.solo_cost, row.solo_s, row.pf_cost,
                   row.pf_s, row.winner_name.c_str(),
                   row.pf_cost < row.solo_cost ? "  [improved]" : "");
    }
    rows.push_back(std::move(row));
  }

  int never_worse = 0;
  int strictly_better = 0;
  for (const Row& r : rows) {
    if (!r.ok) continue;
    if (r.pf_cost <= r.solo_cost) ++never_worse;
    if (r.pf_cost < r.solo_cost) ++strictly_better;
  }
  const int n = static_cast<int>(rows.size());
  const bool gate_never_worse = all_ok && never_worse == n;
  const bool gate_improves = strictly_better >= 4;

  JsonWriter w;
  w.begin_object();
  w.key("bench").value("portfolio");
  w.key("strategies").value(kStrategies);
  w.key("rounds").value(kRounds);
  w.key("threads").value(runtime::threads());
  w.key("designs").begin_array();
  for (const Row& r : rows) {
    w.begin_object();
    w.key("design").value(r.design);
    w.key("ok").value(r.ok);
    w.key("solo_area").value(r.solo_area);
    w.key("solo_power").value(r.solo_power);
    w.key("portfolio_area").value(r.pf_area);
    w.key("portfolio_power").value(r.pf_power);
    w.key("improvement_pct")
        .value(r.solo_cost > 0
                   ? 100.0 * (r.solo_cost - r.pf_cost) / r.solo_cost
                   : 0.0);
    w.key("winner").value(r.winner_name);
    w.key("solo_s").value(r.solo_s);
    w.key("portfolio_s").value(r.pf_s);
    w.end_object();
  }
  w.end_array();
  w.key("never_worse").value(never_worse);
  w.key("strictly_better").value(strictly_better);
  w.key("gate_never_worse").value(gate_never_worse);
  w.key("gate_improves").value(gate_improves);
  w.end_object();
  const std::string json = w.str() + "\n";

  std::fputs(json.c_str(), stdout);
  if (std::FILE* f = std::fopen("BENCH_portfolio.json", "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
  } else {
    std::fprintf(stderr, "bench_portfolio: cannot write BENCH_portfolio.json\n");
    return 1;
  }
  if (!gate_never_worse) {
    std::fprintf(stderr,
                 "bench_portfolio: FAIL: portfolio worse than single-seed on "
                 "%d design(s)\n",
                 n - never_worse);
    return 1;
  }
  if (!gate_improves) {
    std::fprintf(stderr,
                 "bench_portfolio: FAIL: strictly better on only %d/%d "
                 "designs (need >= 4)\n",
                 strictly_better, n);
    return 1;
  }
  return 0;
}
