# Bench binaries land directly in ${CMAKE_BINARY_DIR}/bench (and nothing
# else does), so `for b in build/bench/*; do $b; done` runs them all.
function(hsyn_bench name)
  add_executable(${name} ${CMAKE_SOURCE_DIR}/bench/${name}.cpp)
  target_link_libraries(${name} PRIVATE hsyn benchmark::benchmark)
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

hsyn_bench(bench_library)
hsyn_bench(bench_embedding)
hsyn_bench(bench_moves_ab)
hsyn_bench(bench_table3)
hsyn_bench(bench_table4)
hsyn_bench(bench_ablation)
hsyn_bench(bench_micro)
hsyn_bench(bench_physical)
hsyn_bench(bench_transforms)
hsyn_bench(bench_scaling)
hsyn_bench(bench_runtime)
hsyn_bench(bench_eval)
hsyn_bench(bench_power)
hsyn_bench(bench_obs)
hsyn_bench(bench_serve)
