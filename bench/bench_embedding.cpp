// Reproduces paper Example 3 / Table 2: RTL embedding of two modules
// executing different DFGs into one module, with the correspondence
// table and the area comparison. The paper's OCTTOOLS layout areas
// (RTL1 57.94, RTL2 53.89, NewRTL 61.67) are replaced by our RTL-level
// area model (see DESIGN.md); the reproduced *claim* is the shape:
// area(NewRTL) is far below area(RTL1)+area(RTL2) and only modestly
// above max(area(RTL1), area(RTL2)).
#include <algorithm>
#include <cstdio>

#include "benchmarks/benchmarks.h"
#include "embed/embedder.h"
#include "power/rtlsim.h"
#include "rtl/cost.h"
#include "sched/scheduler.h"
#include "util/fmt.h"
#include "util/table.h"

int main() {
  using namespace hsyn;
  const Library lib = default_library();
  const OpPoint pt{5.0, 20.0};
  const Benchmark bench = make_benchmark("test1", lib);

  std::printf("=== Example 3 / Table 2: RTL embedding ===\n\n");

  struct Pair {
    const char* a;
    const char* b;
  };
  for (const Pair& pr : {Pair{"maddpair", "seqmac"}, Pair{"b3mul", "maddpair"},
                         Pair{"addtree", "seqmac"}}) {
    Datapath rtl1 = make_template_fast(bench.design.behavior(pr.a), lib);
    Datapath rtl2 = make_template_fast(bench.design.behavior(pr.b), lib);
    schedule_datapath(rtl1, lib, pt, kNoDeadline);
    schedule_datapath(rtl2, lib, pt, kNoDeadline);
    EmbedCorrespondence corr;
    auto merged = embed_modules(rtl1, rtl2, lib, pt, &corr);
    if (!merged) {
      std::printf("%s + %s: embedding rejected\n", pr.a, pr.b);
      continue;
    }
    const SchedResult sr = schedule_datapath(*merged, lib, pt, kNoDeadline);
    const double a1 = area_of(rtl1, lib, false).total();
    const double a2 = area_of(rtl2, lib, false).total();
    const double am = area_of(*merged, lib, false).total();
    std::printf("RTL1=%s (area %.1f)  RTL2=%s (area %.1f)  NewRTL area %.1f\n",
                pr.a, a1, pr.b, a2, am);
    std::printf("  saving vs separate: %.1f%%   overhead over max: %.1f%%   "
                "schedules preserved: %s\n",
                100.0 * (1.0 - am / (a1 + a2)),
                100.0 * (am / std::max(a1, a2) - 1.0), sr.ok ? "yes" : "NO");
    // Verify both behaviors on the merged module.
    bool all_ok = true;
    for (const auto* beh : {pr.a, pr.b}) {
      const int b = merged->find_behavior(beh);
      const Trace trace =
          make_trace(bench.design.behavior(beh).num_inputs(), 16, 3);
      all_ok = all_ok && simulate_rtl(*merged, b, trace, lib, pt, false).ok;
    }
    std::printf("  functional verification of both behaviors: %s\n\n",
                all_ok ? "pass" : "FAIL");
  }

  // Full Table-2-style correspondence for the first pair.
  Datapath rtl1 = make_template_fast(bench.design.behavior("maddpair"), lib);
  Datapath rtl2 = make_template_fast(bench.design.behavior("seqmac"), lib);
  schedule_datapath(rtl1, lib, pt, kNoDeadline);
  schedule_datapath(rtl2, lib, pt, kNoDeadline);
  EmbedCorrespondence corr;
  auto merged = embed_modules(rtl1, rtl2, lib, pt, &corr);
  if (merged) {
    std::printf("Correspondence table (Table 2 layout), maddpair+seqmac:\n");
    TextTable t;
    t.row({"NewRTL", "RTL1 (maddpair)", "RTL2 (seqmac)", "Library", "Area"});
    t.rule();
    for (const auto& e : corr.entries) {
      t.row({e.merged, e.from_a, e.from_b, e.lib_type, fixed(e.area, 0)});
    }
    std::printf("%s", t.render().c_str());
  }
  return 0;
}
