// Telemetry overhead benchmark: full hierarchical power synthesis of
// the Paulin benchmark with the background sampler off vs on at an
// aggressive 20 ms interval (the default is 250 ms, so real runs see
// less than what is measured here).
//
// The telemetry layer promises two things this bench checks end to end:
//   * near-zero cost -- the sampler adds < 2% wall time to a real
//     synthesis run (kOverheadBudgetPct),
//   * no interference -- the synthesized datapath is bit-identical
//     (structure fingerprint) with the sampler running or stopped,
//     because sampling is strictly read-only.
//
// Emits BENCH_telemetry.json (and the same object on stdout):
// best-of-reps wall seconds for both modes, overhead %, and samples
// captured per sampled run. Off/on reps are interleaved and wall times
// use the best rep, not the mean, so scheduler noise does not
// masquerade as instrumentation cost.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>

#include "benchmarks/benchmarks.h"
#include "eval/engine.h"
#include "obs/telemetry.h"
#include "rtl/fingerprint.h"
#include "runtime/thread_pool.h"
#include "synth/synthesizer.h"
#include "util/json.h"

namespace {

using namespace hsyn;

constexpr int kReps = 5;
constexpr double kLaxity = 2.2;
constexpr double kOverheadBudgetPct = 2.0;
constexpr int kSampleMs = 20;

double now_minus(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main() {
  using namespace hsyn;
  runtime::set_threads(0);
  const Library lib = default_library();
  const Benchmark bench = make_benchmark("hier_paulin", lib);
  const double ts = kLaxity * min_sample_period_ns(bench.design, lib);
  SynthOptions opts;
  opts.seed = 42;

  // One synthesis run from cold evaluation caches; returns the result
  // fingerprint and wall seconds.
  const auto run = [&](double* seconds) -> std::uint64_t {
    eval::EvalEngine::instance().clear();
    const auto t0 = std::chrono::steady_clock::now();
    const SynthResult r = synthesize(bench.design, lib, &bench.clib, ts,
                                     Objective::Power, Mode::Hierarchical,
                                     opts);
    *seconds = now_minus(t0);
    if (!r.ok) {
      std::fprintf(stderr, "synthesis failed: %s\n", r.fail_reason.c_str());
      std::exit(1);
    }
    return structure_fingerprint(r.dp);
  };

  // Warm-up run (thread pool spin-up, code paging) discarded, then
  // off/on pairs back to back so both modes see the same machine state.
  {
    double s = 0;
    run(&s);
  }
  obs::Telemetry& tel = obs::Telemetry::instance();
  double off_best = 1e30;
  double on_best = 1e30;
  std::uint64_t off_fp = 0;
  std::size_t samples = 0;
  bool identical = true;
  for (int rep = 0; rep < kReps; ++rep) {
    tel.stop();
    double s = 0;
    const std::uint64_t fp = run(&s);
    if (rep == 0) off_fp = fp;
    off_best = std::min(off_best, s);
    if (fp != off_fp) {
      std::fprintf(stderr, "baseline runs diverge\n");
      return 1;
    }

    tel.clear();
    tel.start(kSampleMs);
    double s_on = 0;
    const std::uint64_t fp_on = run(&s_on);
    tel.stop();
    on_best = std::min(on_best, s_on);
    identical = identical && fp_on == off_fp;
    samples = tel.ring().size();
  }

  const double overhead_pct =
      off_best > 0 ? (on_best - off_best) / off_best * 100.0 : 0.0;

  JsonWriter w;
  w.begin_object();
  w.key("bench").value("telemetry_overhead");
  w.key("design").value("hier_paulin");
  w.key("reps").value(kReps);
  w.key("sample_interval_ms").value(kSampleMs);
  w.key("telemetry_off_s").value(off_best);
  w.key("telemetry_on_s").value(on_best);
  w.key("overhead_pct").value(overhead_pct);
  w.key("overhead_budget_pct").value(kOverheadBudgetPct);
  w.key("overhead_ok").value(overhead_pct <= kOverheadBudgetPct);
  w.key("samples_per_run").value(static_cast<std::uint64_t>(samples));
  w.key("bit_identical").value(identical);
  w.end_object();
  const std::string json = w.str() + "\n";

  std::fputs(json.c_str(), stdout);
  if (std::FILE* f = std::fopen("BENCH_telemetry.json", "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
  } else {
    std::fprintf(stderr, "cannot write BENCH_telemetry.json\n");
    return 1;
  }
  // Overhead is informational (CI machines are noisy); identity is not.
  return identical ? 0 : 1;
}
