// Trace-replay kernel benchmark: compiled batched replay (power/replay.h)
// vs the per-time-step reference interpreter, on the hierarchical Paulin
// benchmark and the largest bundled design (dct2d), plus the SIMD kernel
// table vs the portable scalar table.
//
// For each design x backend x thread count the harness evaluates the full
// edge matrix of the top behavior over fresh input traces (a new seed per
// rep, so the shared edge-values cache never answers and the measured
// work is the evaluator itself):
//   * cold: evaluation caches cleared first, so the compiled backend pays
//     program compilation (interp has no compile step; cold ~ warm),
//   * warm: replay programs already memoized, traces still fresh.
// The compiled backend is swept twice when a SIMD table is available:
// once forced scalar ("compiled-scalar") and once under the best table
// ("compiled") -- the end-to-end view of the ISA dispatch.
//
// Microbenchmarks:
//   * opcode_kernels: every per-opcode column kernel of the best table
//     against the scalar table on dense 64k columns -- the noise-robust
//     basis of the simd_speedup gate (outputs bitwise-compared too),
//   * toggle_kernel: the dispatched toggle_count against the scalar
//     hamming16 loop it replaced,
//   * fused_toggle: toggle_count_gather against the buffered interleave
//     path the estimator ran before the fused rewrite.
//
// Emits BENCH_power.json (and the same object on stdout):
//   * per design/backend/threads: cold and warm wall seconds and
//     vectors/sec (trace samples evaluated per second, warm),
//   * speedup_ok: warm compiled >= 3x warm interp at every thread count,
//   * equivalent: compiled and interp matrices are bit-identical, and
//     every kernel-table output matches the scalar reference,
//   * monotone_ok: warm compiled replay never slows down when threads
//     grow 1 -> 2 -> 8 (min over reps, with generous tolerance),
//   * simd_ok: on SIMD-capable hardware the best table's per-opcode
//     throughput is >= 1.5x the scalar table at 1 thread (trivially true
//     when only the scalar table exists).
// The exit code gates equivalence, thread-scaling monotonicity, and the
// SIMD per-opcode speedup; speedup vs interp is reported, not gated, so
// a loaded CI box cannot turn a correctness job red over absolute
// end-to-end throughput (the per-opcode microbenchmark is dense compute
// on one thread -- far less scheduler-sensitive).
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "benchmarks/benchmarks.h"
#include "eval/engine.h"
#include "power/replay.h"
#include "power/replay_kernels.h"
#include "power/trace.h"
#include "runtime/thread_pool.h"
#include "util/json.h"
#include "util/rng.h"

namespace {

using namespace hsyn;

constexpr int kTraceSamples = 512;
constexpr int kReps = 4;

double now_minus(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

BehaviorResolver design_resolver(const Design& d) {
  return [&d](const std::string& name) -> const Dfg* {
    return d.has_behavior(name) ? &d.behavior(name) : nullptr;
  };
}

struct Row {
  std::string backend;
  int threads = 0;
  double cold_s = 0;
  double warm_s = 0;
  double warm_min_s = 0;  ///< fastest single rep: the noise-robust scale metric
  double vectors_per_s = 0;
};

// Scalar reference for the packed toggle kernel: the loop estimator.cpp
// and rtlsim.cpp ran before the popcount rewrite.
int scalar_toggles(const std::int32_t* v, std::size_t n) {
  int total = 0;
  for (std::size_t t = 1; t < n; ++t) total += hamming16(v[t - 1], v[t]);
  return total;
}

std::vector<std::int32_t> random_column(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::int32_t> v(n);
  for (auto& x : v) x = mask16(static_cast<std::int64_t>(rng.next()));
  return v;
}

}  // namespace

int main() {
  using namespace hsyn;
  const Library lib = default_library();

  // The best table this build + CPU can select ("native" resolution).
  set_replay_isa(ReplayIsa::Native);
  const ReplayIsa best_isa = replay_isa();
  const bool has_simd = best_isa != ReplayIsa::Scalar;

  JsonWriter w;
  w.begin_object();
  w.key("bench").value("trace_replay");
  w.key("trace_samples").value(kTraceSamples);
  w.key("reps").value(kReps);
  w.key("isa").begin_object();
  w.key("best").value(replay_isa_name(best_isa));
  w.key("available_avx2").value(replay_isa_available(ReplayIsa::Avx2));
  w.key("available_neon").value(replay_isa_available(ReplayIsa::Neon));
  w.end_object();

  bool equivalent = true;
  bool speedup_ok = true;
  bool monotone_ok = true;
  bool simd_ok = true;
  // min-over-reps still jitters on a loaded box; only flag real
  // regressions like the pre-cutoff 8-thread cliff, not scheduler noise.
  constexpr double kMonotoneTol = 1.35;
  eval::EvalEngine& eng = eval::EvalEngine::instance();

  // End-to-end sweep backends. "compiled" runs under the best table;
  // the forced-scalar lane is added only when it differs.
  std::vector<std::string> backends = {"interp"};
  if (has_simd) backends.push_back("compiled-scalar");
  backends.push_back("compiled");

  w.key("designs").begin_array();
  for (const std::string name : {"hier_paulin", "dct2d"}) {
    const Benchmark bench = make_benchmark(name, lib);
    const Dfg& top = bench.design.top();
    const BehaviorResolver res = design_resolver(bench.design);

    // Equivalence gate, independent of timing: every backend (and every
    // available kernel table) over one trace, bitwise-compared.
    {
      const Trace tr = make_trace(top.num_inputs(), kTraceSamples, 999);
      eng.clear();
      set_replay_mode(ReplayMode::Interp);
      const EdgeMatrix interp = *eval_dfg_edges_shared(top, res, tr);
      set_replay_mode(ReplayMode::Compiled);
      for (const ReplayIsa isa :
           {ReplayIsa::Scalar, ReplayIsa::Avx2, ReplayIsa::Neon}) {
        if (!replay_isa_available(isa)) continue;
        eng.clear();
        set_replay_isa(isa);
        const EdgeMatrix compiled = *eval_dfg_edges_shared(top, res, tr);
        equivalent = equivalent && compiled == interp;
      }
      set_replay_isa(ReplayIsa::Native);
    }

    std::vector<Row> rows;
    for (const std::string& backend : backends) {
      if (backend == "interp") {
        set_replay_mode(ReplayMode::Interp);
        set_replay_isa(ReplayIsa::Native);
      } else {
        set_replay_mode(ReplayMode::Compiled);
        set_replay_isa(backend == "compiled-scalar" ? ReplayIsa::Scalar
                                                    : ReplayIsa::Native);
      }
      for (const int threads : {1, 2, 8}) {
        runtime::set_threads(threads);
        Row row;
        row.backend = backend;
        row.threads = threads;
        for (int rep = 0; rep < kReps; ++rep) {
          // Fresh seeds: the shared edge-values cache must miss, so the
          // measurement is the evaluator, not the memo.
          const Trace cold_tr =
              make_trace(top.num_inputs(), kTraceSamples,
                         static_cast<std::uint64_t>(1000 + rep));
          const Trace warm_tr =
              make_trace(top.num_inputs(), kTraceSamples,
                         static_cast<std::uint64_t>(2000 + rep));
          eng.clear();  // cold: compiled pays program compilation
          const auto t0 = std::chrono::steady_clock::now();
          (void)eval_dfg_edges_shared(top, res, cold_tr);
          row.cold_s += now_minus(t0);
          const auto t1 = std::chrono::steady_clock::now();
          (void)eval_dfg_edges_shared(top, res, warm_tr);
          const double warm_rep = now_minus(t1);
          row.warm_s += warm_rep;
          if (rep == 0 || warm_rep < row.warm_min_s) row.warm_min_s = warm_rep;
        }
        row.vectors_per_s =
            row.warm_s > 0 ? kReps * kTraceSamples / row.warm_s : 0;
        rows.push_back(row);
      }
    }
    runtime::set_threads(1);
    set_replay_isa(ReplayIsa::Native);

    w.begin_object();
    w.key("design").value(name);
    w.key("edges").value(static_cast<int>(top.edges().size()));
    w.key("sweep").begin_array();
    for (const Row& r : rows) {
      w.begin_object();
      w.key("backend").value(r.backend);
      w.key("threads").value(r.threads);
      w.key("cold_s").value(r.cold_s);
      w.key("warm_s").value(r.warm_s);
      w.key("warm_min_s").value(r.warm_min_s);
      w.key("vectors_per_s").value(r.vectors_per_s);
      w.end_object();
    }
    w.end_array();
    // Speedup per thread count: warm compiled (best table) vs warm
    // interp. The interp rows are first, the best-table compiled rows
    // last; both blocks sweep the same thread counts in order.
    w.key("speedup").begin_array();
    const std::size_t per_backend = 3;  // thread counts per backend
    const std::size_t compiled_at = rows.size() - per_backend;
    for (std::size_t i = 0; i < per_backend; ++i) {
      const Row& interp_row = rows[i];
      const Row& compiled_row = rows[compiled_at + i];
      const double s = compiled_row.warm_s > 0
                           ? interp_row.warm_s / compiled_row.warm_s
                           : 0;
      speedup_ok = speedup_ok && s >= 3.0;
      w.begin_object();
      w.key("threads").value(interp_row.threads);
      w.key("compiled_vs_interp").value(s);
      w.end_object();
    }
    w.end_array();
    // Thread-scaling monotonicity of the compiled backend: growing the
    // pool must never make warm replay slower (the serial cutoff eats
    // the handshake overhead on sub-threshold batches).
    bool design_monotone = true;
    for (std::size_t i = compiled_at + 1; i < rows.size(); ++i) {
      design_monotone = design_monotone &&
                        rows[i].warm_min_s <=
                            rows[i - 1].warm_min_s * kMonotoneTol;
    }
    monotone_ok = monotone_ok && design_monotone;
    w.key("monotone_ok").value(design_monotone);
    w.end_object();
  }
  w.end_array();
  set_replay_mode(ReplayMode::Compiled);

  // Per-opcode column kernels: best table vs the scalar table on dense
  // 64k columns, one thread. This is the simd_speedup gate's basis --
  // pure kernel throughput, no scheduling, no cache effects beyond the
  // streamed columns themselves.
  {
    constexpr std::size_t kN = 1 << 16;
    constexpr int kOpReps = 40;
    const std::vector<std::int32_t> a = random_column(kN, 7);
    const std::vector<std::int32_t> b = random_column(kN, 8);
    std::vector<std::int32_t> out_best(kN), out_scalar(kN);
    const detail::ReplayKernelTable& scalar = detail::scalar_kernel_table();
    set_replay_isa(ReplayIsa::Native);
    const detail::ReplayKernelTable& best = detail::active_kernel_table();

    double scalar_total_s = 0, best_total_s = 0;
    w.key("opcode_kernels").begin_array();
    for (int op = 0; op < detail::kNumOpKernels; ++op) {
      const auto t0 = std::chrono::steady_clock::now();
      for (int r = 0; r < kOpReps; ++r) {
        scalar.op[op](a.data(), b.data(), out_scalar.data(), kN);
      }
      const double scalar_s = now_minus(t0);
      const auto t1 = std::chrono::steady_clock::now();
      for (int r = 0; r < kOpReps; ++r) {
        best.op[op](a.data(), b.data(), out_best.data(), kN);
      }
      const double best_s = now_minus(t1);
      equivalent = equivalent && out_best == out_scalar;
      scalar_total_s += scalar_s;
      best_total_s += best_s;
      const double total = static_cast<double>(kN) * kOpReps;
      w.begin_object();
      w.key("op").value(op);
      w.key("scalar_ns_per_element").value(scalar_s * 1e9 / total);
      w.key("best_ns_per_element").value(best_s * 1e9 / total);
      w.key("speedup").value(best_s > 0 ? scalar_s / best_s : 0);
      w.end_object();
    }
    w.end_array();
    const double simd_speedup =
        best_total_s > 0 ? scalar_total_s / best_total_s : 0;
    // The acceptance gate: on SIMD hardware the vector table must beat
    // the (auto-vectorizer-optimized) scalar loops by >= 1.5x overall.
    simd_ok = !has_simd || simd_speedup >= 1.5;
    w.key("simd_isa").value(best.name);
    w.key("simd_speedup").value(simd_speedup);
  }

  // Packed popcount toggle kernel vs the scalar loop it replaced.
  {
    constexpr std::size_t kN = 1 << 16;
    constexpr int kToggleReps = 200;
    const std::vector<std::int32_t> col = random_column(kN, 42);
    long long sink = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < kToggleReps; ++r) {
      sink += toggle_count(col.data(), col.size());
    }
    const double packed_s = now_minus(t0);
    const auto t1 = std::chrono::steady_clock::now();
    for (int r = 0; r < kToggleReps; ++r) {
      sink -= scalar_toggles(col.data(), col.size());
    }
    const double scalar_s = now_minus(t1);
    equivalent = equivalent && sink == 0;  // packed == scalar, and a sink

    const double total = static_cast<double>(kN) * kToggleReps;
    w.key("toggle_kernel").begin_object();
    w.key("elements").value(static_cast<int>(kN));
    w.key("packed_ns_per_element").value(packed_s * 1e9 / total);
    w.key("scalar_ns_per_element").value(scalar_s * 1e9 / total);
    w.key("packed_speedup").value(packed_s > 0 ? scalar_s / packed_s : 0);
    w.end_object();
  }

  // Fused toggle gather vs the buffered interleave the estimator ran
  // before the rewrite (fill an interleave buffer, count it).
  {
    constexpr std::size_t kCols = 4;
    constexpr std::size_t kT = 1 << 14;
    constexpr int kGatherReps = 100;
    std::vector<std::vector<std::int32_t>> cols;
    std::vector<const std::int32_t*> ptrs;
    for (std::size_t c = 0; c < kCols; ++c) {
      cols.push_back(random_column(kT, 100 + c));
      ptrs.push_back(cols.back().data());
    }
    long long sink = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < kGatherReps; ++r) {
      sink += toggle_count_gather(ptrs.data(), kCols, kT);
    }
    const double fused_s = now_minus(t0);
    std::vector<std::int32_t> buf(kCols * kT);
    const auto t1 = std::chrono::steady_clock::now();
    for (int r = 0; r < kGatherReps; ++r) {
      std::size_t iw = 0;
      for (std::size_t t = 0; t < kT; ++t) {
        for (std::size_t c = 0; c < kCols; ++c) buf[iw++] = cols[c][t];
      }
      sink -= toggle_count(buf.data(), buf.size());
    }
    const double buffered_s = now_minus(t1);
    equivalent = equivalent && sink == 0;  // fused == buffered, and a sink

    const double total = static_cast<double>(kCols) * kT * kGatherReps;
    w.key("fused_toggle").begin_object();
    w.key("cols").value(static_cast<int>(kCols));
    w.key("samples").value(static_cast<int>(kT));
    w.key("fused_ns_per_element").value(fused_s * 1e9 / total);
    w.key("buffered_ns_per_element").value(buffered_s * 1e9 / total);
    w.key("fused_speedup").value(fused_s > 0 ? buffered_s / fused_s : 0);
    w.end_object();
  }

  w.key("speedup_ok").value(speedup_ok);
  w.key("monotone_ok").value(monotone_ok);
  w.key("simd_ok").value(simd_ok);
  w.key("equivalent").value(equivalent);
  w.end_object();
  const std::string json = w.str() + "\n";

  std::fputs(json.c_str(), stdout);
  if (std::FILE* f = std::fopen("BENCH_power.json", "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
  } else {
    std::fprintf(stderr, "cannot write BENCH_power.json\n");
    return 1;
  }
  return equivalent && monotone_ok && simd_ok ? 0 : 1;
}
