// Trace-replay kernel benchmark: compiled batched replay (power/replay.h)
// vs the per-time-step reference interpreter, on the hierarchical Paulin
// benchmark and the largest bundled design (dct2d).
//
// For each design x backend x thread count the harness evaluates the full
// edge matrix of the top behavior over fresh input traces (a new seed per
// rep, so the shared edge-values cache never answers and the measured
// work is the evaluator itself):
//   * cold: evaluation caches cleared first, so the compiled backend pays
//     program compilation (interp has no compile step; cold ~ warm),
//   * warm: replay programs already memoized, traces still fresh.
//
// Also times the packed popcount toggle kernel (toggle_count) against the
// scalar hamming16 loop it replaced.
//
// Emits BENCH_power.json (and the same object on stdout):
//   * per design/backend/threads: cold and warm wall seconds and
//     vectors/sec (trace samples evaluated per second, warm),
//   * speedup_ok: warm compiled >= 3x warm interp at every thread count,
//   * equivalent: compiled and interp matrices are bit-identical,
//   * monotone_ok: warm compiled replay never slows down when threads
//     grow 1 -> 2 -> 8 (min over reps, with generous tolerance). This
//     gates the replay serial-cutoff fix: sub-threshold batches must run
//     serially instead of paying the pool handshake.
// The exit code gates equivalence and thread-scaling monotonicity;
// speedup vs interp is reported, not gated, so a loaded CI box cannot
// turn a correctness job red over absolute throughput.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "benchmarks/benchmarks.h"
#include "eval/engine.h"
#include "power/replay.h"
#include "power/trace.h"
#include "runtime/thread_pool.h"
#include "util/json.h"
#include "util/rng.h"

namespace {

using namespace hsyn;

constexpr int kTraceSamples = 512;
constexpr int kReps = 4;

double now_minus(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

BehaviorResolver design_resolver(const Design& d) {
  return [&d](const std::string& name) -> const Dfg* {
    return d.has_behavior(name) ? &d.behavior(name) : nullptr;
  };
}

struct Row {
  std::string backend;
  int threads = 0;
  double cold_s = 0;
  double warm_s = 0;
  double warm_min_s = 0;  ///< fastest single rep: the noise-robust scale metric
  double vectors_per_s = 0;
};

// Scalar reference for the packed toggle kernel: the loop estimator.cpp
// and rtlsim.cpp ran before the popcount rewrite.
int scalar_toggles(const std::int32_t* v, std::size_t n) {
  int total = 0;
  for (std::size_t t = 1; t < n; ++t) total += hamming16(v[t - 1], v[t]);
  return total;
}

}  // namespace

int main() {
  using namespace hsyn;
  const Library lib = default_library();

  JsonWriter w;
  w.begin_object();
  w.key("bench").value("trace_replay");
  w.key("trace_samples").value(kTraceSamples);
  w.key("reps").value(kReps);

  bool equivalent = true;
  bool speedup_ok = true;
  bool monotone_ok = true;
  // min-over-reps still jitters on a loaded box; only flag real
  // regressions like the pre-cutoff 8-thread cliff, not scheduler noise.
  constexpr double kMonotoneTol = 1.35;
  eval::EvalEngine& eng = eval::EvalEngine::instance();

  w.key("designs").begin_array();
  for (const std::string name : {"hier_paulin", "dct2d"}) {
    const Benchmark bench = make_benchmark(name, lib);
    const Dfg& top = bench.design.top();
    const BehaviorResolver res = design_resolver(bench.design);

    // Equivalence gate, independent of timing: both backends over one
    // trace, bitwise-compared.
    {
      const Trace tr = make_trace(top.num_inputs(), kTraceSamples, 999);
      eng.clear();
      set_replay_mode(ReplayMode::Compiled);
      const EdgeMatrix compiled = *eval_dfg_edges_shared(top, res, tr);
      eng.clear();
      set_replay_mode(ReplayMode::Interp);
      const EdgeMatrix interp = *eval_dfg_edges_shared(top, res, tr);
      equivalent = equivalent && compiled == interp;
    }

    std::vector<Row> rows;
    for (const std::string backend : {"interp", "compiled"}) {
      ReplayMode mode = ReplayMode::Compiled;
      parse_replay_mode(backend, &mode);
      set_replay_mode(mode);
      for (const int threads : {1, 2, 8}) {
        runtime::set_threads(threads);
        Row row;
        row.backend = backend;
        row.threads = threads;
        for (int rep = 0; rep < kReps; ++rep) {
          // Fresh seeds: the shared edge-values cache must miss, so the
          // measurement is the evaluator, not the memo.
          const Trace cold_tr =
              make_trace(top.num_inputs(), kTraceSamples,
                         static_cast<std::uint64_t>(1000 + rep));
          const Trace warm_tr =
              make_trace(top.num_inputs(), kTraceSamples,
                         static_cast<std::uint64_t>(2000 + rep));
          eng.clear();  // cold: compiled pays program compilation
          const auto t0 = std::chrono::steady_clock::now();
          (void)eval_dfg_edges_shared(top, res, cold_tr);
          row.cold_s += now_minus(t0);
          const auto t1 = std::chrono::steady_clock::now();
          (void)eval_dfg_edges_shared(top, res, warm_tr);
          const double warm_rep = now_minus(t1);
          row.warm_s += warm_rep;
          if (rep == 0 || warm_rep < row.warm_min_s) row.warm_min_s = warm_rep;
        }
        row.vectors_per_s =
            row.warm_s > 0 ? kReps * kTraceSamples / row.warm_s : 0;
        rows.push_back(row);
      }
    }
    runtime::set_threads(1);

    w.begin_object();
    w.key("design").value(name);
    w.key("edges").value(static_cast<int>(top.edges().size()));
    w.key("sweep").begin_array();
    for (const Row& r : rows) {
      w.begin_object();
      w.key("backend").value(r.backend);
      w.key("threads").value(r.threads);
      w.key("cold_s").value(r.cold_s);
      w.key("warm_s").value(r.warm_s);
      w.key("warm_min_s").value(r.warm_min_s);
      w.key("vectors_per_s").value(r.vectors_per_s);
      w.end_object();
    }
    w.end_array();
    // Speedup per thread count: warm compiled vs warm interp.
    w.key("speedup").begin_array();
    const std::size_t half = rows.size() / 2;  // interp rows, then compiled
    for (std::size_t i = 0; i < half; ++i) {
      const double s = rows[i + half].warm_s > 0
                           ? rows[i].warm_s / rows[i + half].warm_s
                           : 0;
      speedup_ok = speedup_ok && s >= 3.0;
      w.begin_object();
      w.key("threads").value(rows[i].threads);
      w.key("compiled_vs_interp").value(s);
      w.end_object();
    }
    w.end_array();
    // Thread-scaling monotonicity of the compiled backend: growing the
    // pool must never make warm replay slower (the serial cutoff eats
    // the handshake overhead on sub-threshold batches).
    bool design_monotone = true;
    for (std::size_t i = half + 1; i < rows.size(); ++i) {
      design_monotone = design_monotone &&
                        rows[i].warm_min_s <=
                            rows[i - 1].warm_min_s * kMonotoneTol;
    }
    monotone_ok = monotone_ok && design_monotone;
    w.key("monotone_ok").value(design_monotone);
    w.end_object();
  }
  w.end_array();

  // Packed popcount toggle kernel vs the scalar loop it replaced.
  {
    constexpr std::size_t kN = 1 << 16;
    constexpr int kToggleReps = 200;
    std::vector<std::int32_t> col(kN);
    Rng rng(42);
    for (auto& x : col) x = mask16(static_cast<std::int64_t>(rng.next()));
    long long sink = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < kToggleReps; ++r) {
      sink += toggle_count(col.data(), col.size());
    }
    const double packed_s = now_minus(t0);
    const auto t1 = std::chrono::steady_clock::now();
    for (int r = 0; r < kToggleReps; ++r) {
      sink -= scalar_toggles(col.data(), col.size());
    }
    const double scalar_s = now_minus(t1);
    equivalent = equivalent && sink == 0;  // packed == scalar, and a sink

    const double total = static_cast<double>(kN) * kToggleReps;
    w.key("toggle_kernel").begin_object();
    w.key("elements").value(static_cast<int>(kN));
    w.key("packed_ns_per_element").value(packed_s * 1e9 / total);
    w.key("scalar_ns_per_element").value(scalar_s * 1e9 / total);
    w.key("packed_speedup").value(packed_s > 0 ? scalar_s / packed_s : 0);
    w.end_object();
  }

  w.key("speedup_ok").value(speedup_ok);
  w.key("monotone_ok").value(monotone_ok);
  w.key("equivalent").value(equivalent);
  w.end_object();
  const std::string json = w.str() + "\n";

  std::fputs(json.c_str(), stdout);
  if (std::FILE* f = std::fopen("BENCH_power.json", "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
  } else {
    std::fprintf(stderr, "cannot write BENCH_power.json\n");
    return 1;
  }
  return equivalent && monotone_ok ? 0 : 1;
}
