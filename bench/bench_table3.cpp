// Reproduces paper Table 3: per-circuit normalized area and power for
// flattened vs hierarchical synthesis, area- vs power-optimized, at
// laxity factors 1.2 / 2.2 / 3.2. Layout mirrors the paper: row A is
// normalized area, row P is normalized power; under each laxity factor
// the columns are Flat {A, P} and Hier {A, P}. All values are normalized
// to the flattened, area-optimized, 5 V architecture at the same L.F.
// (so Flat/A is (1, 1) by construction).
//
// Set HSYN_QUICK=1 for a reduced smoke sweep.
#include <cstdio>

#include "table_common.h"
#include "util/fmt.h"
#include "util/table.h"

int main() {
  using namespace hsyn;
  using namespace hsyn::tables;
  const Library lib = default_library();
  const auto circuits = sweep_circuits();
  const auto lfs = sweep_laxities();

  std::printf("=== Table 3: area (normalized) and power (normalized) ===\n");
  std::printf("columns per L.F.: Flat A | Flat P | Hier A | Hier P\n\n");

  TextTable t;
  {
    std::vector<std::string> head = {"Circuit", "A/P"};
    for (const double lf : lfs) {
      head.push_back(strf("LF=%.1f FlA", lf));
      head.push_back("FlP");
      head.push_back("HiA");
      head.push_back("HiP");
    }
    t.row(head);
    t.rule();
  }

  double max_reduction = 0;        // vs flat area-opt at 5 V, area <= 1.5x
  double max_reduction_area = 0;   // area ratio of that design
  double best_reduction_any = 0;   // unrestricted best
  double best_reduction_area = 0;
  int hier_power_wins = 0, points = 0;

  for (const std::string& name : circuits) {
    std::vector<std::string> row_a = {name, "A"};
    std::vector<std::string> row_p = {"", "P"};
    for (const double lf : lfs) {
      const CircuitLfResult r = run_point(name, lf, lib);
      if (!r.ok) {
        for (int k = 0; k < 4; ++k) {
          row_a.push_back("-");
          row_p.push_back("-");
        }
        continue;
      }
      for (const Cell* c : {&r.flat_a, &r.flat_p, &r.hier_a, &r.hier_p}) {
        row_a.push_back(fixed(c->area, 2));
        row_p.push_back(fixed(c->power, 2));
      }
      ++points;
      hier_power_wins += r.hier_p.power <= r.flat_p.power ? 1 : 0;
      if (r.hier_p.area <= 1.5 && 1.0 / r.hier_p.power > max_reduction) {
        max_reduction = 1.0 / r.hier_p.power;
        max_reduction_area = r.hier_p.area;
      }
      if (1.0 / r.hier_p.power > best_reduction_any) {
        best_reduction_any = 1.0 / r.hier_p.power;
        best_reduction_area = r.hier_p.area;
      }
    }
    t.row(row_a);
    t.row(row_p);
    t.rule();
  }
  std::printf("%s\n", t.render().c_str());

  std::printf("Headline checks (paper Section 5):\n");
  std::printf("  max power reduction of hier power-opt vs area-opt@5V at "
              "<=50%% area overhead: %.1fx (area ratio %.2f; paper reports "
              "up to 6.7x)\n",
              max_reduction, max_reduction_area);
  std::printf("  best reduction at any overhead: %.1fx (area ratio %.2f)\n",
              best_reduction_any, best_reduction_area);
  std::printf("  hier power-opt <= flat power-opt at %d of %d sweep points\n",
              hier_power_wins, points);
  return 0;
}
