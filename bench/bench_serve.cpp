// Daemon throughput benchmark: one in-process hsyn daemon on a unix
// socket serves every bundled benchmark twice -- a cold pass from
// cleared evaluation caches, then a warm pass over the same specs --
// and the client-side latencies are compared.
//
// What this demonstrates end to end:
//   * the serve pipeline's bit-identity -- each warm report must equal
//     its cold report byte for byte (timing line stripped), even though
//     the second pass runs entirely out of caches populated by other
//     jobs (every job has a fresh job id, so a warm hit IS a cross-job
//     hit),
//   * the value of a long-lived daemon -- warm latency and the shared
//     eval-cache hit rates quantify what a fleet of one-shot CLI
//     processes would recompute from scratch.
//
// Emits BENCH_serve.json (and the same object on stdout). The exit code
// gates identity only; latency numbers are informational (CI machines
// are noisy).
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "benchmarks/benchmarks.h"
#include "eval/engine.h"
#include "runtime/thread_pool.h"
#include "serve/client.h"
#include "serve/server.h"
#include "util/json.h"

namespace {

using namespace hsyn;
using namespace hsyn::serve;

constexpr int kSessions = 4;

std::string strip_timing(const std::string& report) {
  std::istringstream in(report);
  std::string out, line;
  while (std::getline(in, line)) {
    if (line.find("synthesis time") == std::string::npos) {
      out += line;
      out += '\n';
    }
  }
  return out;
}

struct LookupStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
};

/// Hit/miss totals over all five shared eval caches.
LookupStats cache_stats() {
  eval::EvalEngine& e = eval::EvalEngine::instance();
  LookupStats s;
  for (const eval::CacheCounters& c :
       {e.energy_cache().counters(), e.area_cache().counters(),
        e.connectivity_cache().counters(), e.edge_values_cache().counters(),
        e.program_cache().counters()}) {
    s.hits += c.hits;
    s.misses += c.misses;
  }
  return s;
}

double hit_rate(const LookupStats& before, const LookupStats& after) {
  const std::uint64_t hits = after.hits - before.hits;
  const std::uint64_t total = hits + (after.misses - before.misses);
  return total == 0 ? 0.0 : static_cast<double>(hits) / total;
}

struct Row {
  std::string design;
  double cold_s = 0;
  double warm_s = 0;
  bool identical = false;
};

}  // namespace

int main() {
  runtime::set_threads(0);
  // The six headline benchmarks plus the two extra designs
  // make_benchmark accepts -- the full bundled set of eight.
  std::vector<std::string> designs = benchmark_names();
  designs.push_back("fir16");
  designs.push_back("dct2d");

  const std::string path =
      "/tmp/hsyn_bench_serve_" + std::to_string(::getpid()) + ".sock";
  Server server(ServerOptions{path, 0, kSessions});
  std::string err;
  if (!server.start(&err)) {
    std::fprintf(stderr, "bench_serve: %s\n", err.c_str());
    return 1;
  }
  std::thread daemon([&] { server.run(); });

  Client client;
  if (!client.connect(path, &err) || !client.ping(&err)) {
    std::fprintf(stderr, "bench_serve: %s\n", err.c_str());
    return 1;
  }

  const auto run_one = [&](const std::string& design, double* seconds,
                           std::string* report) -> bool {
    JobSpec spec;
    spec.benchmark = design;
    spec.seed = 42;
    spec.verify = false;
    JobOutcome out;
    const auto t0 = std::chrono::steady_clock::now();
    if (!client.run_job(spec, nullptr, &out, &err)) {
      std::fprintf(stderr, "bench_serve: %s: %s\n", design.c_str(),
                   err.c_str());
      return false;
    }
    *seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             t0)
                   .count();
    if (!out.ok) {
      std::fprintf(stderr, "bench_serve: %s: %s\n", design.c_str(),
                   out.error.c_str());
      return false;
    }
    *report = strip_timing(out.report);
    return true;
  };

  eval::EvalEngine::instance().clear();
  std::vector<Row> rows;
  std::vector<std::string> cold_reports;
  const LookupStats before_cold = cache_stats();
  for (const std::string& design : designs) {
    Row row;
    row.design = design;
    std::string report;
    if (!run_one(design, &row.cold_s, &report)) return 1;
    cold_reports.push_back(std::move(report));
    rows.push_back(std::move(row));
  }
  const LookupStats after_cold = cache_stats();
  bool identical = true;
  for (std::size_t i = 0; i < designs.size(); ++i) {
    std::string report;
    if (!run_one(designs[i], &rows[i].warm_s, &report)) return 1;
    rows[i].identical = report == cold_reports[i];
    identical = identical && rows[i].identical;
  }
  const LookupStats after_warm = cache_stats();

  if (!client.shutdown_server(&err)) {
    std::fprintf(stderr, "bench_serve: %s\n", err.c_str());
    return 1;
  }
  daemon.join();

  double cold_total = 0, warm_total = 0;
  for (const Row& r : rows) {
    cold_total += r.cold_s;
    warm_total += r.warm_s;
  }

  JsonWriter w;
  w.begin_object();
  w.key("bench").value("serve");
  w.key("sessions").value(kSessions);
  w.key("threads").value(runtime::threads());
  w.key("designs").begin_array();
  for (const Row& r : rows) {
    w.begin_object();
    w.key("design").value(r.design);
    w.key("cold_s").value(r.cold_s);
    w.key("warm_s").value(r.warm_s);
    w.key("speedup").value(r.warm_s > 0 ? r.cold_s / r.warm_s : 0.0);
    w.key("identical").value(r.identical);
    w.end_object();
  }
  w.end_array();
  w.key("cold_total_s").value(cold_total);
  w.key("warm_total_s").value(warm_total);
  w.key("warm_speedup").value(warm_total > 0 ? cold_total / warm_total : 0.0);
  w.key("cold_hit_rate").value(hit_rate(before_cold, after_cold));
  w.key("warm_hit_rate").value(hit_rate(after_cold, after_warm));
  w.key("identical").value(identical);
  w.end_object();
  const std::string json = w.str() + "\n";

  std::fputs(json.c_str(), stdout);
  if (std::FILE* f = std::fopen("BENCH_serve.json", "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
  } else {
    std::fprintf(stderr, "cannot write BENCH_serve.json\n");
    return 1;
  }
  return identical ? 0 : 1;
}
