// Dataflow-analysis benchmark: cold vs warm analyze_dfg over a corpus
// of random DFGs plus the bundled benchmark designs, and the rewrite
// validator's throughput over self-equivalent pairs.
//
// The cold pass starts from a cleared eval engine (every analysis
// computes); the warm pass re-queries the identical corpus, where the
// facts cache (eval/engine.h) should answer from memory. The validator
// rows measure verify_equivalent on canonical-hash-identical pairs (the
// fast path the --verify-rewrites gate hits on no-op rewrites) and on
// anisomorphic-but-equivalent pairs (full differential replay).
//
// Emits BENCH_dataflow.json (and the same object on stdout):
//   * corpus size, cold/warm wall seconds, warm speedup,
//   * equivalence checks per second for each validator path,
//   * deterministic: facts of the warm pass are the shared cold
//     entries (pointer-equal), and every self-pair verifies.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "benchmarks/benchmarks.h"
#include "check/dataflow.h"
#include "check/equiv.h"
#include "eval/engine.h"
#include "power/trace.h"
#include "util/json.h"

#include "../tests/random_dfg.h"

namespace {

using namespace hsyn;

constexpr int kRandomDfgs = 200;
constexpr int kEquivPairs = 50;

double now_minus(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main() {
  using namespace hsyn;

  // Corpus: random layered DAGs of mixed size plus every bundled
  // benchmark's behaviors (hierarchy included).
  std::vector<Dfg> corpus;
  corpus.reserve(kRandomDfgs);
  for (std::uint64_t seed = 1; seed <= kRandomDfgs; ++seed) {
    corpus.push_back(
        testing_support::random_dfg(seed, 4 + static_cast<int>(seed % 28)));
  }
  const Library lib = default_library();
  std::vector<Design> designs;
  for (const std::string& name : benchmark_names()) {
    designs.push_back(make_benchmark(name, lib).design);
  }

  eval::EvalEngine& eng = eval::EvalEngine::instance();
  eng.clear();

  // Cold: every analysis computes. Warm: every analysis is a cache hit.
  const auto analyze_all = [&]() {
    std::size_t edges = 0;
    for (const Dfg& d : corpus) edges += lint::analyze_dfg(d)->edges.size();
    for (const Design& ds : designs) {
      const BehaviorResolver res = [&ds](const std::string& n) -> const Dfg* {
        return ds.has_behavior(n) ? &ds.behavior(n) : nullptr;
      };
      edges += lint::analyze_dfg(ds.top(), res)->edges.size();
    }
    return edges;
  };
  const auto t0 = std::chrono::steady_clock::now();
  const std::size_t cold_edges = analyze_all();
  const double cold_s = now_minus(t0);
  const auto t1 = std::chrono::steady_clock::now();
  const std::size_t warm_edges = analyze_all();
  const double warm_s = now_minus(t1);
  bool deterministic = cold_edges == warm_edges;
  // Warm facts must be the shared cold entries.
  deterministic = deterministic &&
                  lint::analyze_dfg(corpus[0]).get() ==
                      lint::analyze_dfg(corpus[0]).get();

  // Validator throughput. Fast path: pointer-distinct but canonically
  // identical graphs. Slow path: trace-seeded facts + replay on graphs
  // the canonical hash cannot match (same behavior, rebuilt ids).
  std::vector<Dfg> twins;
  for (std::uint64_t seed = 1; seed <= kEquivPairs; ++seed) {
    twins.push_back(
        testing_support::random_dfg(seed, 4 + static_cast<int>(seed % 28)));
  }
  const auto t2 = std::chrono::steady_clock::now();
  for (int i = 0; i < kEquivPairs; ++i) {
    const Dfg& a = corpus[static_cast<std::size_t>(i)];
    const Dfg& b = twins[static_cast<std::size_t>(i)];
    const lint::EquivResult r = lint::verify_equivalent(a, b, {});
    deterministic = deterministic && r.equivalent;
  }
  const double fast_s = now_minus(t2);

  const auto t3 = std::chrono::steady_clock::now();
  int replay_checks = 0;
  for (int i = 0; i < kEquivPairs; ++i) {
    const Dfg& a = corpus[static_cast<std::size_t>(i)];
    const Trace t = make_trace(a.num_inputs(), 64,
                               static_cast<std::uint64_t>(i) * 131 + 7);
    // Differential replay against itself under a fresh stimulus (the
    // canonical-hash stage short-circuits pointer-identical graphs, so
    // copy with a changed name to force the full pipeline).
    Dfg b = a;
    const lint::EquivResult r = lint::verify_equivalent(a, b, t);
    deterministic = deterministic && r.equivalent;
    ++replay_checks;
  }
  const double full_s = now_minus(t3);

  const double warm_speedup = warm_s > 0 ? cold_s / warm_s : 0;
  JsonWriter w;
  w.begin_object();
  w.key("bench").value("dataflow");
  w.key("corpus_dfgs").value(static_cast<int>(corpus.size()));
  w.key("corpus_designs").value(static_cast<int>(designs.size()));
  w.key("edges_analyzed").value(static_cast<std::uint64_t>(cold_edges));
  w.key("cold_s").value(cold_s);
  w.key("warm_s").value(warm_s);
  w.key("warm_speedup").value(warm_speedup);
  w.key("equiv_fastpath_per_s")
      .value(fast_s > 0 ? kEquivPairs / fast_s : 0);
  w.key("equiv_full_per_s").value(full_s > 0 ? replay_checks / full_s : 0);
  w.key("deterministic").value(deterministic);
  w.end_object();
  const std::string json = w.str() + "\n";

  std::fputs(json.c_str(), stdout);
  if (std::FILE* f = std::fopen("BENCH_dataflow.json", "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
  } else {
    std::fprintf(stderr, "cannot write BENCH_dataflow.json\n");
    return 1;
  }
  return deterministic ? 0 : 1;
}
