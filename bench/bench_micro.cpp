// Microbenchmarks (google-benchmark) of the hot algorithmic kernels:
// scheduling, slack derivation, RTL embedding, power estimation and the
// cycle-accurate simulator. These support the paper's efficiency claims
// ("fast and efficient algorithm for mapping multiple behaviors",
// validity of every move "checked by scheduling").
#include <benchmark/benchmark.h>

#include "benchmarks/benchmarks.h"
#include "dfg/flatten.h"
#include "embed/embedder.h"
#include "power/estimator.h"
#include "power/rtlsim.h"
#include "sched/scheduler.h"
#include "sched/slack.h"
#include "synth/initial.h"

namespace {

using namespace hsyn;

const OpPoint kRef{5.0, 20.0};

struct Prepared {
  Library lib = default_library();
  Benchmark bench;
  Datapath dp;
  Trace trace;

  explicit Prepared(const std::string& name) : bench(make_benchmark(name, lib)) {
    SynthContext cx;
    cx.design = &bench.design;
    cx.lib = &lib;
    cx.clib = &bench.clib;
    cx.pt = kRef;
    dp = initial_solution(bench.design.top(), name, cx);
    schedule_datapath(dp, lib, kRef, kNoDeadline);
    trace = make_trace(bench.design.top().num_inputs(), 24, 7);
  }
};

void BM_ScheduleDatapath(benchmark::State& state) {
  static Prepared p("avenhaus_cascade");
  for (auto _ : state) {
    Datapath dp = p.dp;
    benchmark::DoNotOptimize(schedule_datapath(dp, p.lib, kRef, kNoDeadline));
  }
}
BENCHMARK(BM_ScheduleDatapath);

void BM_AlapStarts(benchmark::State& state) {
  static Prepared p("dct");
  const int deadline = p.dp.behaviors[0].makespan + 8;
  for (auto _ : state) {
    benchmark::DoNotOptimize(alap_starts(p.dp, 0, p.lib, kRef, deadline));
  }
}
BENCHMARK(BM_AlapStarts);

void BM_DeriveChildConstraint(benchmark::State& state) {
  static Prepared p("iir");
  const int deadline = p.dp.behaviors[0].makespan + 8;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        derive_child_constraint(p.dp, 0, 0, p.lib, kRef, deadline));
  }
}
BENCHMARK(BM_DeriveChildConstraint);

void BM_EmbedModules(benchmark::State& state) {
  static Prepared p("test1");
  Datapath a = make_template_fast(p.bench.design.behavior("maddpair"), p.lib);
  Datapath b = make_template_fast(p.bench.design.behavior("seqmac"), p.lib);
  schedule_datapath(a, p.lib, kRef, kNoDeadline);
  schedule_datapath(b, p.lib, kRef, kNoDeadline);
  for (auto _ : state) {
    benchmark::DoNotOptimize(embed_modules(a, b, p.lib, kRef, nullptr));
  }
}
BENCHMARK(BM_EmbedModules);

void BM_EnergyEstimate(benchmark::State& state) {
  static Prepared p("dct");
  for (auto _ : state) {
    benchmark::DoNotOptimize(energy_of(p.dp, 0, p.trace, p.lib, kRef));
  }
}
BENCHMARK(BM_EnergyEstimate);

void BM_RtlSimulate(benchmark::State& state) {
  static Prepared p("iir");
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulate_rtl(p.dp, 0, p.trace, p.lib, kRef));
  }
}
BENCHMARK(BM_RtlSimulate);

void BM_FlattenLarge(benchmark::State& state) {
  static Library lib = default_library();
  static Benchmark bench = make_benchmark("avenhaus_cascade", lib);
  for (auto _ : state) {
    benchmark::DoNotOptimize(flatten_top(bench.design));
  }
}
BENCHMARK(BM_FlattenLarge);

}  // namespace

BENCHMARK_MAIN();
