// Reproduces paper Table 4: per-laxity-factor averages over the whole
// benchmark suite -- area ratio of power-optimized circuits, power ratio
// vs area-optimized at 5 V and vs Vdd-scaled area-optimized, and
// synthesis CPU time, for flattened (Fl) and hierarchical (Hi)
// synthesis.
//
// Set HSYN_QUICK=1 for a reduced smoke sweep.
#include <cstdio>

#include "table_common.h"
#include "util/fmt.h"
#include "util/table.h"

int main() {
  using namespace hsyn;
  using namespace hsyn::tables;
  const Library lib = default_library();
  const auto circuits = sweep_circuits();
  const auto lfs = sweep_laxities();

  std::printf("=== Table 4: summary of area (ratio), power (ratio) and "
              "synthesis time ===\n\n");
  TextTable t;
  t.row({"L.F.", "Area Fl", "Area Hi", "Pow5V Fl", "Pow5V Hi", "PowVsc Fl",
         "PowVsc Hi", "Time Fl (s)", "Time Hi (s)"});
  t.rule();

  double total_fl_time = 0, total_hi_time = 0;
  double sum_hier_p = 0, sum_flat_p = 0;
  double sum_hier_a = 0, sum_flat_a_of_areaopt = 0;
  int n_pts = 0;

  for (const double lf : lfs) {
    double area_fl = 0, area_hi = 0;
    double p5_fl = 0, p5_hi = 0;
    double psc_fl = 0, psc_hi = 0;
    double sec_fl = 0, sec_hi = 0;
    int n = 0;
    for (const std::string& name : circuits) {
      const CircuitLfResult r = run_point(name, lf, lib);
      if (!r.ok) continue;
      ++n;
      area_fl += r.flat_p.area;
      area_hi += r.hier_p.area;
      p5_fl += r.flat_p.power;
      p5_hi += r.hier_p.power;
      // "Vdd-sc": power-optimized vs the Vdd-scaled area-optimized design.
      psc_fl += r.flat_p.power / r.flat_a_scaled_power;
      psc_hi += r.hier_p.power / r.hier_a_scaled_power;
      sec_fl += r.flat_seconds;
      sec_hi += r.hier_seconds;
      sum_hier_p += r.hier_p.power;
      sum_flat_p += r.flat_p.power;
      sum_hier_a += r.hier_a.area;
      sum_flat_a_of_areaopt += 1.0;
      ++n_pts;
    }
    if (n == 0) continue;
    t.row({fixed(lf, 1), fixed(area_fl / n, 2), fixed(area_hi / n, 2),
           fixed(p5_fl / n, 2), fixed(p5_hi / n, 2), fixed(psc_fl / n, 2),
           fixed(psc_hi / n, 2), fixed(sec_fl / n, 1), fixed(sec_hi / n, 1)});
    total_fl_time += sec_fl;
    total_hi_time += sec_hi;
  }
  std::printf("%s\n", t.render().c_str());

  if (n_pts > 0 && total_hi_time > 0) {
    std::printf("Aggregate checks (paper Section 5):\n");
    std::printf("  hierarchical power-opt designs consume %.1f%% %s power "
                "than flattened power-opt on average (paper: 13.3%% less)\n",
                100.0 * std::abs(1.0 - sum_hier_p / sum_flat_p),
                sum_hier_p <= sum_flat_p ? "less" : "more");
    std::printf("  hierarchical area-opt overhead over flattened area-opt: "
                "%.1f%% (paper: 5.6%%)\n",
                100.0 * (sum_hier_a / sum_flat_a_of_areaopt - 1.0));
    std::printf("  synthesis-time ratio flat/hier: %.1fx (paper: ~2.6-3.3x)\n",
                total_fl_time / total_hi_time);
  }
  return 0;
}
