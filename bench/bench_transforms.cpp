// Behavioral-transformation study (extension beyond the paper's
// evaluation, in the spirit of its reference [4]): auto-generated
// equivalent DFG variants (balanced vs chained reduction trees) widen
// move A's search space. For each benchmark this reports synthesis
// results with the user-declared equivalences only vs with auto-variants
// registered for every building block.
#include <cstdio>

#include "benchmarks/benchmarks.h"
#include "dfg/transform.h"
#include "synth/synthesizer.h"
#include "util/fmt.h"
#include "util/table.h"

int main() {
  using namespace hsyn;
  const Library lib = default_library();
  SynthOptions opts;
  opts.max_passes = 4;

  std::printf("=== Auto-generated equivalent DFG variants (move A fuel) ===\n");
  std::printf("area- and power-optimized hierarchical synthesis at L.F. 2.2,\n"
              "with and without reshaped (balanced/chained) variants of every "
              "building block.\n\n");

  TextTable t;
  t.row({"circuit", "variants", "area base", "area +var", "power base",
         "power +var"});
  t.rule();
  for (const char* name : {"fir16", "test1", "dct", "iir"}) {
    // Baseline: the benchmark's own equivalences.
    const Benchmark base = make_benchmark(name, lib);
    const double ts = 2.2 * min_sample_period_ns(base.design, lib);
    const SynthResult a0 = synthesize(base.design, lib, &base.clib, ts,
                                      Objective::Area, Mode::Hierarchical, opts);
    const SynthResult p0 = synthesize(base.design, lib, &base.clib, ts,
                                      Objective::Power, Mode::Hierarchical,
                                      opts);

    // Enriched: auto-variants for every non-top behavior.
    Benchmark rich = make_benchmark(name, lib);
    int added = 0;
    for (const std::string& b : std::vector<std::string>(
             rich.design.behavior_names())) {
      if (b == rich.design.top_name()) continue;
      added += register_variants(rich.design, b);
    }
    // Rebuild templates so the new variants get fast/lp/compact modules.
    rich.clib = default_complex_library(rich.design, lib);
    const SynthResult a1 = synthesize(rich.design, lib, &rich.clib, ts,
                                      Objective::Area, Mode::Hierarchical, opts);
    const SynthResult p1 = synthesize(rich.design, lib, &rich.clib, ts,
                                      Objective::Power, Mode::Hierarchical,
                                      opts);
    if (!(a0.ok && p0.ok && a1.ok && p1.ok)) {
      t.row({name, std::to_string(added), "-", "-", "-", "-"});
      continue;
    }
    t.row({name, std::to_string(added), fixed(a0.area, 0), fixed(a1.area, 0),
           fixed(p0.power, 4), fixed(p1.power, 4)});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("Variants can only help (the original DFG stays in the "
              "equivalence class);\ngains appear where a chained variant "
              "enables chained_addN units or a\nbalanced variant shortens "
              "the critical path of a shared module.\n");
  return 0;
}
