// Physical-model validation: for every benchmark, compares the RTL-level
// area model against the gate-level expansion and the floorplan, i.e.
// checks that the substitutions documented in DESIGN.md (SIS/MSU ->
// gate builders, OCTTOOLS -> floorplanner) order architectures the same
// way the optimization-time estimates do.
#include <cstdio>

#include "benchmarks/benchmarks.h"
#include "gates/gate_expand.h"
#include "place/floorplan.h"
#include "rtl/cost.h"
#include "synth/synthesizer.h"
#include "util/fmt.h"
#include "util/table.h"

int main() {
  using namespace hsyn;
  const Library lib = default_library();
  SynthOptions opts;
  opts.max_passes = 4;

  std::printf("=== RTL model vs gate-level vs floorplan ===\n");
  std::printf("(area-opt and power-opt architectures per circuit at L.F. "
              "2.2; the RTL\nmodel must order the pair the same way gates "
              "and wirelength do)\n\n");

  TextTable t;
  t.row({"circuit", "objective", "RTL area", "gates", "gate area", "HPWL",
         "bbox"});
  t.rule();

  int rtl_gate_agree = 0, rtl_hpwl_agree = 0, pairs = 0;
  for (const std::string& name : benchmark_names()) {
    const Benchmark bench = make_benchmark(name, lib);
    const double ts = 2.2 * min_sample_period_ns(bench.design, lib);
    double rtl_area[2] = {0, 0};
    double gate_area[2] = {0, 0};
    double hpwl[2] = {0, 0};
    bool ok = true;
    int k = 0;
    for (const Objective obj : {Objective::Area, Objective::Power}) {
      const SynthResult r = synthesize(bench.design, lib, &bench.clib, ts, obj,
                                       Mode::Hierarchical, opts);
      if (!r.ok) {
        ok = false;
        break;
      }
      const gates::ModuleGates g = gates::expand_datapath(r.dp, lib);
      const place::Floorplan fp = place::floorplan(r.dp, lib);
      rtl_area[k] = r.area;
      gate_area[k] = g.total_area();
      hpwl[k] = fp.hpwl();
      t.row({name, objective_name(obj), fixed(r.area, 0),
             std::to_string(g.total_gates()), fixed(g.total_area(), 0),
             fixed(fp.hpwl(), 0), fixed(fp.bbox_area(), 0)});
      ++k;
    }
    if (!ok) continue;
    t.rule();
    ++pairs;
    // Does the cheaper-by-RTL design stay cheaper at the gate level / in
    // wiring?
    const bool rtl_says = rtl_area[0] < rtl_area[1];
    rtl_gate_agree += (gate_area[0] < gate_area[1]) == rtl_says ? 1 : 0;
    rtl_hpwl_agree += (hpwl[0] < hpwl[1]) == rtl_says ? 1 : 0;
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("ordering agreement with the RTL area model: gate level %d/%d, "
              "wirelength %d/%d\n",
              rtl_gate_agree, pairs, rtl_hpwl_agree, pairs);
  return 0;
}
