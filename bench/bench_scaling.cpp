// Synthesis-time scaling (paper Section 5: "For larger hierarchical
// behavioral descriptions, we expect the ratio of synthesis times for
// flattened and hierarchical synthesis to be even greater").
//
// Builds biquad cascades of growing length and measures hierarchical vs
// flattened area-objective synthesis time and quality at L.F. 2.2.
#include <cstdio>

#include "benchmarks/benchmarks.h"
#include "benchmarks/dfg_build.h"
#include "synth/synthesizer.h"
#include "util/fmt.h"
#include "util/table.h"

namespace {

using namespace hsyn;

/// Cascade of `stages` biquads (the `iir` topology, parameterized).
Design make_cascade(int stages) {
  using namespace dfg_build;
  Design design;
  design.add_behavior(make_biquad());
  Dfg d("cascade" + std::to_string(stages), 1 + 7 * stages, 1 + 2 * stages);
  int x = in(d, 0);
  for (int k = 0; k < stages; ++k) {
    const int base = 1 + 7 * k;
    std::vector<int> ins = {x};
    for (int p = 0; p < 7; ++p) ins.push_back(in(d, base + p));
    const auto outs = hier(d, "biquad", ins, 3, "bq" + std::to_string(k));
    x = outs[0];
    out(d, outs[1], 1 + 2 * k);
    out(d, outs[2], 2 + 2 * k);
  }
  out(d, x, 0);
  d.validate();
  design.add_behavior(std::move(d));
  design.set_top("cascade" + std::to_string(stages));
  design.validate();
  return design;
}

}  // namespace

int main() {
  using namespace hsyn;
  const Library lib = default_library();
  SynthOptions opts;
  opts.max_passes = 6;
  opts.max_clocks = 2;

  std::printf("=== Synthesis-time scaling: biquad cascades, area objective, "
              "L.F. 2.2 ===\n\n");
  TextTable t;
  t.row({"stages", "flat ops", "hier time (s)", "flat time (s)", "ratio",
         "hier area", "flat area"});
  t.rule();
  for (const int stages : {2, 4, 8, 12}) {
    const Design design = make_cascade(stages);
    const ComplexLibrary clib = default_complex_library(design, lib);
    const double ts = 2.2 * min_sample_period_ns(design, lib);
    const SynthResult hier = synthesize(design, lib, &clib, ts,
                                        Objective::Area, Mode::Hierarchical,
                                        opts);
    const SynthResult flat = synthesize(design, lib, &clib, ts,
                                        Objective::Area, Mode::Flattened,
                                        opts);
    if (!hier.ok || !flat.ok) {
      t.row({std::to_string(stages), "-", "-", "-", "-", "-", "-"});
      continue;
    }
    t.row({std::to_string(stages),
           std::to_string(design.flattened_size(design.top_name())),
           fixed(hier.synth_seconds, 2), fixed(flat.synth_seconds, 2),
           fixed(flat.synth_seconds / hier.synth_seconds, 1),
           fixed(hier.area, 0), fixed(flat.area, 0)});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("The ratio grows with design size: hierarchical move selection "
              "works on a\nconstant number of module objects while the "
              "flattened engine's per-pass\nbudget and scheduling graphs grow "
              "with the operation count.\n");
  return 0;
}
