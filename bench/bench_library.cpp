// Reproduces paper Table 1: the simple-module library with areas and
// cycle counts at the reference operating point (5 V, 20 ns clock), plus
// the Vdd scaling behavior the clock/Vdd-selection loops rely on.
#include <cstdio>

#include "library/library.h"
#include "util/fmt.h"
#include "util/table.h"

int main() {
  using namespace hsyn;
  const Library lib = default_library();
  const OpPoint ref{5.0, 20.0};

  std::printf("=== Table 1: functional unit and register properties ===\n");
  std::printf("(reference operating point: Vdd 5 V, clock 20 ns)\n\n");
  TextTable t;
  t.row({"module", "ops", "area", "delay (ns)", "cycles", "cap_sw",
         "chain depth"});
  t.rule();
  for (int i = 0; i < lib.num_fu_types(); ++i) {
    const FuType& fu = lib.fu(i);
    std::string ops;
    for (const Op op : fu.ops) {
      ops += std::string(ops.empty() ? "" : ",") + op_name(op);
    }
    t.row({fu.name, ops, fixed(fu.area, 0), fixed(fu.delay_ns, 0),
           std::to_string(lib.cycles(i, ref)), fixed(fu.cap_sw, 1),
           std::to_string(fu.chain_depth)});
  }
  t.row({lib.reg().name, "storage", fixed(lib.reg().area, 0), "-", "-",
         fixed(lib.reg().cap_sw, 1), "-"});
  std::printf("%s\n", t.render().c_str());

  std::printf("=== Vdd scaling (delay factor / energy factor) ===\n");
  TextTable v;
  v.row({"Vdd (V)", "delay x", "energy x", "mult1 cycles @20ns"});
  v.rule();
  for (const double vdd : default_vdds()) {
    v.row({fixed(vdd, 1), fixed(delay_scale(vdd), 2),
           fixed(energy_scale(vdd), 2),
           std::to_string(cycles_at(55, vdd, 20))});
  }
  std::printf("%s\n", v.render().c_str());

  std::printf("=== Pruned clock candidates at 5 V ===\n");
  std::string clks;
  for (const double c : candidate_clocks(lib.fus(), 5.0)) {
    clks += strf("%.1f ", c);
  }
  std::printf("%s ns\n", clks.c_str());
  return 0;
}
