// Reproduces paper Example 2: moves of type A and B applied to the
// Fig. 1(b)-style solution of `test1`.
//
//  * constraint derivation finds the slack the environment offers each
//    complex instance (RTL2's profile relaxes from its current output
//    times toward the consumption deadlines),
//  * move A swaps a module for a better library element -- including a
//    functionally equivalent *different DFG* (C1 -> C2 style), and
//  * move B descends into a module and resynthesizes it, discovering the
//    mult1 -> mult2 swap that cuts power.
#include <cstdio>

#include "benchmarks/benchmarks.h"
#include "power/estimator.h"
#include "sched/scheduler.h"
#include "sched/slack.h"
#include "synth/initial.h"
#include "synth/moves.h"
#include "util/fmt.h"

int main() {
  using namespace hsyn;
  const Library lib = default_library();
  const Benchmark bench = make_benchmark("test1", lib);
  const OpPoint pt{5.0, 20.0};

  SynthContext cx;
  cx.design = &bench.design;
  cx.lib = &lib;
  cx.clib = &bench.clib;
  cx.pt = pt;
  cx.obj = Objective::Power;
  cx.trace = make_trace(bench.design.top().num_inputs(), 32, 42);

  Datapath dp = initial_solution(bench.design.top(), "test1", cx);
  const SchedResult sr = schedule_datapath(dp, lib, pt, kNoDeadline);
  // Like the paper's 12-cycle constraint on Fig. 1(a): modest slack.
  cx.deadline = sr.makespan + sr.makespan / 2;
  schedule_datapath(dp, lib, pt, cx.deadline);

  std::printf("=== Example 2: moves A and B on test1 ===\n");
  std::printf("sampling period: %d cycles (schedule %d)\n\n", cx.deadline,
              sr.makespan);

  std::printf("-- constraint derivation (Fig. 5 middle box) --\n");
  for (std::size_t c = 0; c < dp.children.size(); ++c) {
    const Profile p = dp.children[c].impl->profile(0, lib, pt);
    const auto mc =
        derive_child_constraint(dp, 0, static_cast<int>(c), lib, pt, cx.deadline);
    if (!mc) continue;
    std::string cur, rel;
    for (const int o : p.out) cur += strf("%d ", o);
    for (const int o : mc->out_deadline) rel += strf("%d ", o);
    std::printf("  %-10s current output times {%s} -> relaxed deadlines {%s}\n",
                dp.children[c].name.c_str(), cur.c_str(), rel.c_str());
  }

  std::printf("\n-- iterated moves A/B (power objective) --\n");
  double energy = energy_of(dp, 0, cx.trace, lib, pt).total();
  std::printf("initial energy/sample: %.1f\n", energy);
  Datapath cur = dp;
  for (int step = 0; step < 8; ++step) {
    const Move m = best_replace_move(cur, cx);
    if (!m.valid || m.gain <= 0) break;
    cur = m.result;
    energy -= m.gain;
    std::printf("  step %d: %-14s %-55s gain %.1f\n", step, m.kind.c_str(),
                m.desc.c_str(), m.gain);
  }
  const double final_energy = energy_of(cur, 0, cx.trace, lib, pt).total();
  std::printf("final energy/sample: %.1f  (%.1fx reduction from moves A/B "
              "alone)\n\n",
              final_energy,
              energy_of(dp, 0, cx.trace, lib, pt).total() / final_energy);

  std::printf("-- resulting module selection --\n");
  for (const ChildUnit& c : cur.children) {
    int m1 = 0, m2 = 0;
    for (const FuUnit& fu : c.impl->fus) {
      m1 += lib.fu(fu.type).name == "mult1" ? 1 : 0;
      m2 += lib.fu(fu.type).name == "mult2" ? 1 : 0;
    }
    std::printf("  %-12s (%s): %d x mult1, %d x mult2\n", c.name.c_str(),
                c.impl->name.c_str(), m1, m2);
  }
  std::printf("\nThe paper's Example 2 behavior: with relaxed constraints the "
              "resynthesis\nprefers the slower, low-switched-capacitance "
              "mult2 (and equivalent-DFG swaps\nwhere the environment "
              "rewards a different factorization).\n");
  return 0;
}
