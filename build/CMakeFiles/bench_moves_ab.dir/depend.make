# Empty dependencies file for bench_moves_ab.
# This may be replaced when dependencies are built.
