file(REMOVE_RECURSE
  "CMakeFiles/bench_moves_ab.dir/bench/bench_moves_ab.cpp.o"
  "CMakeFiles/bench_moves_ab.dir/bench/bench_moves_ab.cpp.o.d"
  "bench/bench_moves_ab"
  "bench/bench_moves_ab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_moves_ab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
