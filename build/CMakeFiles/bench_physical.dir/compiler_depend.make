# Empty compiler generated dependencies file for bench_physical.
# This may be replaced when dependencies are built.
