file(REMOVE_RECURSE
  "CMakeFiles/bench_physical.dir/bench/bench_physical.cpp.o"
  "CMakeFiles/bench_physical.dir/bench/bench_physical.cpp.o.d"
  "bench/bench_physical"
  "bench/bench_physical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_physical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
