# Empty dependencies file for bench_embedding.
# This may be replaced when dependencies are built.
