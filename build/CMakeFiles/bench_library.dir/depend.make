# Empty dependencies file for bench_library.
# This may be replaced when dependencies are built.
