file(REMOVE_RECURSE
  "CMakeFiles/bench_library.dir/bench/bench_library.cpp.o"
  "CMakeFiles/bench_library.dir/bench/bench_library.cpp.o.d"
  "bench/bench_library"
  "bench/bench_library.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_library.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
