file(REMOVE_RECURSE
  "CMakeFiles/bench_table4.dir/bench/bench_table4.cpp.o"
  "CMakeFiles/bench_table4.dir/bench/bench_table4.cpp.o.d"
  "bench/bench_table4"
  "bench/bench_table4.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
