# Empty dependencies file for bench_transforms.
# This may be replaced when dependencies are built.
