file(REMOVE_RECURSE
  "CMakeFiles/bench_transforms.dir/bench/bench_transforms.cpp.o"
  "CMakeFiles/bench_transforms.dir/bench/bench_transforms.cpp.o.d"
  "bench/bench_transforms"
  "bench/bench_transforms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_transforms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
