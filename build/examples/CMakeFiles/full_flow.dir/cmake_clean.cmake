file(REMOVE_RECURSE
  "CMakeFiles/full_flow.dir/full_flow.cpp.o"
  "CMakeFiles/full_flow.dir/full_flow.cpp.o.d"
  "full_flow"
  "full_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/full_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
