file(REMOVE_RECURSE
  "CMakeFiles/custom_library.dir/custom_library.cpp.o"
  "CMakeFiles/custom_library.dir/custom_library.cpp.o.d"
  "custom_library"
  "custom_library.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_library.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
