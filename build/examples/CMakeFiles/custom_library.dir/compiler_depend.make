# Empty compiler generated dependencies file for custom_library.
# This may be replaced when dependencies are built.
