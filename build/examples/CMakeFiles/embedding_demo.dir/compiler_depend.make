# Empty compiler generated dependencies file for embedding_demo.
# This may be replaced when dependencies are built.
