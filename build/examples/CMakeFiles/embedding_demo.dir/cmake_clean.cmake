file(REMOVE_RECURSE
  "CMakeFiles/embedding_demo.dir/embedding_demo.cpp.o"
  "CMakeFiles/embedding_demo.dir/embedding_demo.cpp.o.d"
  "embedding_demo"
  "embedding_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/embedding_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
