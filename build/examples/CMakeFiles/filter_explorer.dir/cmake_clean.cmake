file(REMOVE_RECURSE
  "CMakeFiles/filter_explorer.dir/filter_explorer.cpp.o"
  "CMakeFiles/filter_explorer.dir/filter_explorer.cpp.o.d"
  "filter_explorer"
  "filter_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/filter_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
