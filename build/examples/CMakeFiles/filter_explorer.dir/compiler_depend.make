# Empty compiler generated dependencies file for filter_explorer.
# This may be replaced when dependencies are built.
