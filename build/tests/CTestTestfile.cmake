# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/hsyn_tests[1]_include.cmake")
add_test(cli_power_smoke "/root/repo/build/src/hsyn" "--design" "/root/repo/tests/data/dot2.dfg" "--objective" "power" "--templates" "--laxity" "2.0")
set_tests_properties(cli_power_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;44;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_area_flat_smoke "/root/repo/build/src/hsyn" "--design" "/root/repo/tests/data/dot2.dfg" "--objective" "area" "--mode" "flat" "--laxity" "1.5" "--netlist" "/root/repo/build/tests/dot2_netlist.txt" "--fsm" "/root/repo/build/tests/dot2_fsm.txt")
set_tests_properties(cli_area_flat_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;47;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_bad_args "/root/repo/build/src/hsyn" "--bogus")
set_tests_properties(cli_bad_args PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;52;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_custom_library_trace "/root/repo/build/src/hsyn" "--design" "/root/repo/tests/data/dot2.dfg" "--library" "/root/repo/tests/data/custom.lib" "--trace" "/root/repo/tests/data/dot2.trace" "--objective" "power" "--laxity" "2.2")
set_tests_properties(cli_custom_library_trace PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;55;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_verilog_out "/root/repo/build/src/hsyn" "--design" "/root/repo/tests/data/dot2.dfg" "--objective" "area" "--templates" "--auto-variants" "--laxity" "2.0" "--verilog" "/root/repo/build/tests/dot2.v" "--dot" "/root/repo/build/tests/dot2.dot")
set_tests_properties(cli_verilog_out PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;60;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_missing_design "/root/repo/build/src/hsyn" "--design" "/nonexistent.dfg")
set_tests_properties(cli_missing_design PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;65;add_test;/root/repo/tests/CMakeLists.txt;0;")
