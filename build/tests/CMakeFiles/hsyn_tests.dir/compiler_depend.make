# Empty compiler generated dependencies file for hsyn_tests.
# This may be replaced when dependencies are built.
