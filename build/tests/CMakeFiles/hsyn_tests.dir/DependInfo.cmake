
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_analysis.cpp" "tests/CMakeFiles/hsyn_tests.dir/test_analysis.cpp.o" "gcc" "tests/CMakeFiles/hsyn_tests.dir/test_analysis.cpp.o.d"
  "/root/repo/tests/test_benchmarks.cpp" "tests/CMakeFiles/hsyn_tests.dir/test_benchmarks.cpp.o" "gcc" "tests/CMakeFiles/hsyn_tests.dir/test_benchmarks.cpp.o.d"
  "/root/repo/tests/test_controller.cpp" "tests/CMakeFiles/hsyn_tests.dir/test_controller.cpp.o" "gcc" "tests/CMakeFiles/hsyn_tests.dir/test_controller.cpp.o.d"
  "/root/repo/tests/test_cost.cpp" "tests/CMakeFiles/hsyn_tests.dir/test_cost.cpp.o" "gcc" "tests/CMakeFiles/hsyn_tests.dir/test_cost.cpp.o.d"
  "/root/repo/tests/test_datapath.cpp" "tests/CMakeFiles/hsyn_tests.dir/test_datapath.cpp.o" "gcc" "tests/CMakeFiles/hsyn_tests.dir/test_datapath.cpp.o.d"
  "/root/repo/tests/test_deep_hierarchy.cpp" "tests/CMakeFiles/hsyn_tests.dir/test_deep_hierarchy.cpp.o" "gcc" "tests/CMakeFiles/hsyn_tests.dir/test_deep_hierarchy.cpp.o.d"
  "/root/repo/tests/test_dfg.cpp" "tests/CMakeFiles/hsyn_tests.dir/test_dfg.cpp.o" "gcc" "tests/CMakeFiles/hsyn_tests.dir/test_dfg.cpp.o.d"
  "/root/repo/tests/test_edge_cases.cpp" "tests/CMakeFiles/hsyn_tests.dir/test_edge_cases.cpp.o" "gcc" "tests/CMakeFiles/hsyn_tests.dir/test_edge_cases.cpp.o.d"
  "/root/repo/tests/test_embedder.cpp" "tests/CMakeFiles/hsyn_tests.dir/test_embedder.cpp.o" "gcc" "tests/CMakeFiles/hsyn_tests.dir/test_embedder.cpp.o.d"
  "/root/repo/tests/test_estimator.cpp" "tests/CMakeFiles/hsyn_tests.dir/test_estimator.cpp.o" "gcc" "tests/CMakeFiles/hsyn_tests.dir/test_estimator.cpp.o.d"
  "/root/repo/tests/test_flatten.cpp" "tests/CMakeFiles/hsyn_tests.dir/test_flatten.cpp.o" "gcc" "tests/CMakeFiles/hsyn_tests.dir/test_flatten.cpp.o.d"
  "/root/repo/tests/test_floorplan.cpp" "tests/CMakeFiles/hsyn_tests.dir/test_floorplan.cpp.o" "gcc" "tests/CMakeFiles/hsyn_tests.dir/test_floorplan.cpp.o.d"
  "/root/repo/tests/test_gate_datapath.cpp" "tests/CMakeFiles/hsyn_tests.dir/test_gate_datapath.cpp.o" "gcc" "tests/CMakeFiles/hsyn_tests.dir/test_gate_datapath.cpp.o.d"
  "/root/repo/tests/test_gates.cpp" "tests/CMakeFiles/hsyn_tests.dir/test_gates.cpp.o" "gcc" "tests/CMakeFiles/hsyn_tests.dir/test_gates.cpp.o.d"
  "/root/repo/tests/test_hungarian.cpp" "tests/CMakeFiles/hsyn_tests.dir/test_hungarian.cpp.o" "gcc" "tests/CMakeFiles/hsyn_tests.dir/test_hungarian.cpp.o.d"
  "/root/repo/tests/test_improve.cpp" "tests/CMakeFiles/hsyn_tests.dir/test_improve.cpp.o" "gcc" "tests/CMakeFiles/hsyn_tests.dir/test_improve.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/hsyn_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/hsyn_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_io_extra.cpp" "tests/CMakeFiles/hsyn_tests.dir/test_io_extra.cpp.o" "gcc" "tests/CMakeFiles/hsyn_tests.dir/test_io_extra.cpp.o.d"
  "/root/repo/tests/test_library.cpp" "tests/CMakeFiles/hsyn_tests.dir/test_library.cpp.o" "gcc" "tests/CMakeFiles/hsyn_tests.dir/test_library.cpp.o.d"
  "/root/repo/tests/test_moves.cpp" "tests/CMakeFiles/hsyn_tests.dir/test_moves.cpp.o" "gcc" "tests/CMakeFiles/hsyn_tests.dir/test_moves.cpp.o.d"
  "/root/repo/tests/test_moves_extra.cpp" "tests/CMakeFiles/hsyn_tests.dir/test_moves_extra.cpp.o" "gcc" "tests/CMakeFiles/hsyn_tests.dir/test_moves_extra.cpp.o.d"
  "/root/repo/tests/test_physical_consistency.cpp" "tests/CMakeFiles/hsyn_tests.dir/test_physical_consistency.cpp.o" "gcc" "tests/CMakeFiles/hsyn_tests.dir/test_physical_consistency.cpp.o.d"
  "/root/repo/tests/test_pipeline_fir.cpp" "tests/CMakeFiles/hsyn_tests.dir/test_pipeline_fir.cpp.o" "gcc" "tests/CMakeFiles/hsyn_tests.dir/test_pipeline_fir.cpp.o.d"
  "/root/repo/tests/test_profile.cpp" "tests/CMakeFiles/hsyn_tests.dir/test_profile.cpp.o" "gcc" "tests/CMakeFiles/hsyn_tests.dir/test_profile.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/hsyn_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/hsyn_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_report.cpp" "tests/CMakeFiles/hsyn_tests.dir/test_report.cpp.o" "gcc" "tests/CMakeFiles/hsyn_tests.dir/test_report.cpp.o.d"
  "/root/repo/tests/test_rtlsim.cpp" "tests/CMakeFiles/hsyn_tests.dir/test_rtlsim.cpp.o" "gcc" "tests/CMakeFiles/hsyn_tests.dir/test_rtlsim.cpp.o.d"
  "/root/repo/tests/test_scheduler.cpp" "tests/CMakeFiles/hsyn_tests.dir/test_scheduler.cpp.o" "gcc" "tests/CMakeFiles/hsyn_tests.dir/test_scheduler.cpp.o.d"
  "/root/repo/tests/test_slack.cpp" "tests/CMakeFiles/hsyn_tests.dir/test_slack.cpp.o" "gcc" "tests/CMakeFiles/hsyn_tests.dir/test_slack.cpp.o.d"
  "/root/repo/tests/test_synthesizer.cpp" "tests/CMakeFiles/hsyn_tests.dir/test_synthesizer.cpp.o" "gcc" "tests/CMakeFiles/hsyn_tests.dir/test_synthesizer.cpp.o.d"
  "/root/repo/tests/test_textio.cpp" "tests/CMakeFiles/hsyn_tests.dir/test_textio.cpp.o" "gcc" "tests/CMakeFiles/hsyn_tests.dir/test_textio.cpp.o.d"
  "/root/repo/tests/test_textio_property.cpp" "tests/CMakeFiles/hsyn_tests.dir/test_textio_property.cpp.o" "gcc" "tests/CMakeFiles/hsyn_tests.dir/test_textio_property.cpp.o.d"
  "/root/repo/tests/test_trace.cpp" "tests/CMakeFiles/hsyn_tests.dir/test_trace.cpp.o" "gcc" "tests/CMakeFiles/hsyn_tests.dir/test_trace.cpp.o.d"
  "/root/repo/tests/test_transform.cpp" "tests/CMakeFiles/hsyn_tests.dir/test_transform.cpp.o" "gcc" "tests/CMakeFiles/hsyn_tests.dir/test_transform.cpp.o.d"
  "/root/repo/tests/test_util.cpp" "tests/CMakeFiles/hsyn_tests.dir/test_util.cpp.o" "gcc" "tests/CMakeFiles/hsyn_tests.dir/test_util.cpp.o.d"
  "/root/repo/tests/test_vdd_points.cpp" "tests/CMakeFiles/hsyn_tests.dir/test_vdd_points.cpp.o" "gcc" "tests/CMakeFiles/hsyn_tests.dir/test_vdd_points.cpp.o.d"
  "/root/repo/tests/test_verilog.cpp" "tests/CMakeFiles/hsyn_tests.dir/test_verilog.cpp.o" "gcc" "tests/CMakeFiles/hsyn_tests.dir/test_verilog.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hsyn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
