file(REMOVE_RECURSE
  "libhsyn.a"
)
