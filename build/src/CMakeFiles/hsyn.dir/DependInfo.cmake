
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/benchmarks/benchmarks.cpp" "src/CMakeFiles/hsyn.dir/benchmarks/benchmarks.cpp.o" "gcc" "src/CMakeFiles/hsyn.dir/benchmarks/benchmarks.cpp.o.d"
  "/root/repo/src/benchmarks/complexlib.cpp" "src/CMakeFiles/hsyn.dir/benchmarks/complexlib.cpp.o" "gcc" "src/CMakeFiles/hsyn.dir/benchmarks/complexlib.cpp.o.d"
  "/root/repo/src/benchmarks/dct.cpp" "src/CMakeFiles/hsyn.dir/benchmarks/dct.cpp.o" "gcc" "src/CMakeFiles/hsyn.dir/benchmarks/dct.cpp.o.d"
  "/root/repo/src/benchmarks/filters.cpp" "src/CMakeFiles/hsyn.dir/benchmarks/filters.cpp.o" "gcc" "src/CMakeFiles/hsyn.dir/benchmarks/filters.cpp.o.d"
  "/root/repo/src/benchmarks/fir.cpp" "src/CMakeFiles/hsyn.dir/benchmarks/fir.cpp.o" "gcc" "src/CMakeFiles/hsyn.dir/benchmarks/fir.cpp.o.d"
  "/root/repo/src/benchmarks/paulin.cpp" "src/CMakeFiles/hsyn.dir/benchmarks/paulin.cpp.o" "gcc" "src/CMakeFiles/hsyn.dir/benchmarks/paulin.cpp.o.d"
  "/root/repo/src/benchmarks/test1.cpp" "src/CMakeFiles/hsyn.dir/benchmarks/test1.cpp.o" "gcc" "src/CMakeFiles/hsyn.dir/benchmarks/test1.cpp.o.d"
  "/root/repo/src/dfg/analysis.cpp" "src/CMakeFiles/hsyn.dir/dfg/analysis.cpp.o" "gcc" "src/CMakeFiles/hsyn.dir/dfg/analysis.cpp.o.d"
  "/root/repo/src/dfg/design.cpp" "src/CMakeFiles/hsyn.dir/dfg/design.cpp.o" "gcc" "src/CMakeFiles/hsyn.dir/dfg/design.cpp.o.d"
  "/root/repo/src/dfg/dfg.cpp" "src/CMakeFiles/hsyn.dir/dfg/dfg.cpp.o" "gcc" "src/CMakeFiles/hsyn.dir/dfg/dfg.cpp.o.d"
  "/root/repo/src/dfg/dot.cpp" "src/CMakeFiles/hsyn.dir/dfg/dot.cpp.o" "gcc" "src/CMakeFiles/hsyn.dir/dfg/dot.cpp.o.d"
  "/root/repo/src/dfg/flatten.cpp" "src/CMakeFiles/hsyn.dir/dfg/flatten.cpp.o" "gcc" "src/CMakeFiles/hsyn.dir/dfg/flatten.cpp.o.d"
  "/root/repo/src/dfg/textio.cpp" "src/CMakeFiles/hsyn.dir/dfg/textio.cpp.o" "gcc" "src/CMakeFiles/hsyn.dir/dfg/textio.cpp.o.d"
  "/root/repo/src/dfg/transform.cpp" "src/CMakeFiles/hsyn.dir/dfg/transform.cpp.o" "gcc" "src/CMakeFiles/hsyn.dir/dfg/transform.cpp.o.d"
  "/root/repo/src/embed/embedder.cpp" "src/CMakeFiles/hsyn.dir/embed/embedder.cpp.o" "gcc" "src/CMakeFiles/hsyn.dir/embed/embedder.cpp.o.d"
  "/root/repo/src/embed/hungarian.cpp" "src/CMakeFiles/hsyn.dir/embed/hungarian.cpp.o" "gcc" "src/CMakeFiles/hsyn.dir/embed/hungarian.cpp.o.d"
  "/root/repo/src/gates/gate_builders.cpp" "src/CMakeFiles/hsyn.dir/gates/gate_builders.cpp.o" "gcc" "src/CMakeFiles/hsyn.dir/gates/gate_builders.cpp.o.d"
  "/root/repo/src/gates/gate_datapath.cpp" "src/CMakeFiles/hsyn.dir/gates/gate_datapath.cpp.o" "gcc" "src/CMakeFiles/hsyn.dir/gates/gate_datapath.cpp.o.d"
  "/root/repo/src/gates/gate_expand.cpp" "src/CMakeFiles/hsyn.dir/gates/gate_expand.cpp.o" "gcc" "src/CMakeFiles/hsyn.dir/gates/gate_expand.cpp.o.d"
  "/root/repo/src/gates/gate_netlist.cpp" "src/CMakeFiles/hsyn.dir/gates/gate_netlist.cpp.o" "gcc" "src/CMakeFiles/hsyn.dir/gates/gate_netlist.cpp.o.d"
  "/root/repo/src/library/library.cpp" "src/CMakeFiles/hsyn.dir/library/library.cpp.o" "gcc" "src/CMakeFiles/hsyn.dir/library/library.cpp.o.d"
  "/root/repo/src/library/module_types.cpp" "src/CMakeFiles/hsyn.dir/library/module_types.cpp.o" "gcc" "src/CMakeFiles/hsyn.dir/library/module_types.cpp.o.d"
  "/root/repo/src/library/profile.cpp" "src/CMakeFiles/hsyn.dir/library/profile.cpp.o" "gcc" "src/CMakeFiles/hsyn.dir/library/profile.cpp.o.d"
  "/root/repo/src/library/textio.cpp" "src/CMakeFiles/hsyn.dir/library/textio.cpp.o" "gcc" "src/CMakeFiles/hsyn.dir/library/textio.cpp.o.d"
  "/root/repo/src/library/vdd.cpp" "src/CMakeFiles/hsyn.dir/library/vdd.cpp.o" "gcc" "src/CMakeFiles/hsyn.dir/library/vdd.cpp.o.d"
  "/root/repo/src/place/floorplan.cpp" "src/CMakeFiles/hsyn.dir/place/floorplan.cpp.o" "gcc" "src/CMakeFiles/hsyn.dir/place/floorplan.cpp.o.d"
  "/root/repo/src/power/estimator.cpp" "src/CMakeFiles/hsyn.dir/power/estimator.cpp.o" "gcc" "src/CMakeFiles/hsyn.dir/power/estimator.cpp.o.d"
  "/root/repo/src/power/rtlsim.cpp" "src/CMakeFiles/hsyn.dir/power/rtlsim.cpp.o" "gcc" "src/CMakeFiles/hsyn.dir/power/rtlsim.cpp.o.d"
  "/root/repo/src/power/trace.cpp" "src/CMakeFiles/hsyn.dir/power/trace.cpp.o" "gcc" "src/CMakeFiles/hsyn.dir/power/trace.cpp.o.d"
  "/root/repo/src/power/trace_io.cpp" "src/CMakeFiles/hsyn.dir/power/trace_io.cpp.o" "gcc" "src/CMakeFiles/hsyn.dir/power/trace_io.cpp.o.d"
  "/root/repo/src/rtl/complex_library.cpp" "src/CMakeFiles/hsyn.dir/rtl/complex_library.cpp.o" "gcc" "src/CMakeFiles/hsyn.dir/rtl/complex_library.cpp.o.d"
  "/root/repo/src/rtl/controller.cpp" "src/CMakeFiles/hsyn.dir/rtl/controller.cpp.o" "gcc" "src/CMakeFiles/hsyn.dir/rtl/controller.cpp.o.d"
  "/root/repo/src/rtl/cost.cpp" "src/CMakeFiles/hsyn.dir/rtl/cost.cpp.o" "gcc" "src/CMakeFiles/hsyn.dir/rtl/cost.cpp.o.d"
  "/root/repo/src/rtl/datapath.cpp" "src/CMakeFiles/hsyn.dir/rtl/datapath.cpp.o" "gcc" "src/CMakeFiles/hsyn.dir/rtl/datapath.cpp.o.d"
  "/root/repo/src/rtl/netlist.cpp" "src/CMakeFiles/hsyn.dir/rtl/netlist.cpp.o" "gcc" "src/CMakeFiles/hsyn.dir/rtl/netlist.cpp.o.d"
  "/root/repo/src/sched/scheduler.cpp" "src/CMakeFiles/hsyn.dir/sched/scheduler.cpp.o" "gcc" "src/CMakeFiles/hsyn.dir/sched/scheduler.cpp.o.d"
  "/root/repo/src/sched/slack.cpp" "src/CMakeFiles/hsyn.dir/sched/slack.cpp.o" "gcc" "src/CMakeFiles/hsyn.dir/sched/slack.cpp.o.d"
  "/root/repo/src/synth/improve.cpp" "src/CMakeFiles/hsyn.dir/synth/improve.cpp.o" "gcc" "src/CMakeFiles/hsyn.dir/synth/improve.cpp.o.d"
  "/root/repo/src/synth/initial.cpp" "src/CMakeFiles/hsyn.dir/synth/initial.cpp.o" "gcc" "src/CMakeFiles/hsyn.dir/synth/initial.cpp.o.d"
  "/root/repo/src/synth/move_ab.cpp" "src/CMakeFiles/hsyn.dir/synth/move_ab.cpp.o" "gcc" "src/CMakeFiles/hsyn.dir/synth/move_ab.cpp.o.d"
  "/root/repo/src/synth/move_share.cpp" "src/CMakeFiles/hsyn.dir/synth/move_share.cpp.o" "gcc" "src/CMakeFiles/hsyn.dir/synth/move_share.cpp.o.d"
  "/root/repo/src/synth/move_split.cpp" "src/CMakeFiles/hsyn.dir/synth/move_split.cpp.o" "gcc" "src/CMakeFiles/hsyn.dir/synth/move_split.cpp.o.d"
  "/root/repo/src/synth/moves.cpp" "src/CMakeFiles/hsyn.dir/synth/moves.cpp.o" "gcc" "src/CMakeFiles/hsyn.dir/synth/moves.cpp.o.d"
  "/root/repo/src/synth/report.cpp" "src/CMakeFiles/hsyn.dir/synth/report.cpp.o" "gcc" "src/CMakeFiles/hsyn.dir/synth/report.cpp.o.d"
  "/root/repo/src/synth/synthesizer.cpp" "src/CMakeFiles/hsyn.dir/synth/synthesizer.cpp.o" "gcc" "src/CMakeFiles/hsyn.dir/synth/synthesizer.cpp.o.d"
  "/root/repo/src/util/fmt.cpp" "src/CMakeFiles/hsyn.dir/util/fmt.cpp.o" "gcc" "src/CMakeFiles/hsyn.dir/util/fmt.cpp.o.d"
  "/root/repo/src/util/log.cpp" "src/CMakeFiles/hsyn.dir/util/log.cpp.o" "gcc" "src/CMakeFiles/hsyn.dir/util/log.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/hsyn.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/hsyn.dir/util/table.cpp.o.d"
  "/root/repo/src/verilog/verilog.cpp" "src/CMakeFiles/hsyn.dir/verilog/verilog.cpp.o" "gcc" "src/CMakeFiles/hsyn.dir/verilog/verilog.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
