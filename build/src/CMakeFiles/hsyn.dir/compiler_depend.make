# Empty compiler generated dependencies file for hsyn.
# This may be replaced when dependencies are built.
