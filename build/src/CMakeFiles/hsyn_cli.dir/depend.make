# Empty dependencies file for hsyn_cli.
# This may be replaced when dependencies are built.
