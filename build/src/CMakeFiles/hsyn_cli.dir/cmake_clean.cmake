file(REMOVE_RECURSE
  "CMakeFiles/hsyn_cli.dir/tools/hsyn_main.cpp.o"
  "CMakeFiles/hsyn_cli.dir/tools/hsyn_main.cpp.o.d"
  "hsyn"
  "hsyn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsyn_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
